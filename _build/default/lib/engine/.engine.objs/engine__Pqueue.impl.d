lib/engine/pqueue.ml: Array List
