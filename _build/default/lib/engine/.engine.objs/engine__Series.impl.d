lib/engine/series.ml: Array Float List Printf
