(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator and the workload
    generators draws from one of these streams, so a (seed, parameters)
    pair reproduces a run bit-for-bit. The generator is the splitmix64
    mixer, which is fast, has a full 2^64 period per stream, and
    supports cheap stream splitting for independent substreams. *)

type t
(** A mutable generator stream. *)

val create : int -> t
(** [create seed] is a fresh stream. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent stream and advances [t]. Use one
    split stream per simulated component so adding draws to one
    component does not perturb another. *)

val copy : t -> t
(** [copy t] duplicates the stream state (the copy replays [t]'s
    future). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for
    arrival processes in workload generators. *)

val shuffle : t -> 'a array -> unit
(** Fisher–Yates shuffle in place. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of
    [0 .. n-1]. *)
