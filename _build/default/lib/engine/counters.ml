type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (cell t name)
let add t name n = cell t name := !(cell t name) + n
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let set t name n = cell t name := n
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (to_list t)
