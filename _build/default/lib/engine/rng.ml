type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* Non-negative 62-bit value: OCaml ints are 63-bit, so mask to 62 bits
   to stay positive after conversion. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let v = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- v
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
