(** Paper-style text tables.

    Renders aligned monospace tables for the benchmark harness output
    (one per paper table, with a paper-value column next to the
    measured one). *)

type t

val create : headers:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the arity differs from the
    headers. *)

val add_rows : t -> string list list -> unit

val render : ?title:string -> t -> string
(** Box-drawn table. Numeric-looking cells are right-aligned, others
    left-aligned. *)

val us : float -> string
(** Format nanoseconds-as-float into a microseconds cell, two
    decimals. *)

val us_of_ns : int -> string
val ms_of_ns : int -> string
val pct : float -> string
