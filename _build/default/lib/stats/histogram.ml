type t = {
  min_value : int;
  buckets_per_decade : int;
  counts : int array;
  bounds : int array;  (* upper bound of each bucket *)
  mutable n : int;
  mutable sum : int;
  mutable max_v : int;
  mutable min_v : int;
}

let create ?(min_value = 100) ?(max_value = 10_000_000_000) ?(buckets_per_decade = 8) () =
  if min_value <= 0 || max_value <= min_value then invalid_arg "Histogram.create: bad range";
  if buckets_per_decade < 1 then invalid_arg "Histogram.create: bad resolution";
  let decades = log10 (float_of_int max_value /. float_of_int min_value) in
  let nbuckets = max 1 (int_of_float (ceil (decades *. float_of_int buckets_per_decade))) in
  let ratio = 10.0 ** (1.0 /. float_of_int buckets_per_decade) in
  let bounds =
    Array.init nbuckets (fun i ->
        int_of_float (float_of_int min_value *. (ratio ** float_of_int (i + 1))))
  in
  {
    min_value;
    buckets_per_decade;
    counts = Array.make nbuckets 0;
    bounds;
    n = 0;
    sum = 0;
    max_v = 0;
    min_v = 0;
  }

let bucket_of t v =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if v <= t.bounds.(mid) then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (Array.length t.bounds - 1)

let add t v =
  let v = max 0 v in
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v;
  if t.n = 1 || v < t.min_v then t.min_v <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
let max_seen t = t.max_v
let min_seen t = if t.n = 0 then 0 else t.min_v

let percentile t p =
  if p <= 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p in (0, 100]";
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let rec walk i seen =
      if i >= Array.length t.counts then t.max_v
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then min t.bounds.(i) t.max_v else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let merge a b =
  if
    a.min_value <> b.min_value
    || a.buckets_per_decade <> b.buckets_per_decade
    || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: layout mismatch";
  let m = create ~min_value:a.min_value ~buckets_per_decade:a.buckets_per_decade () in
  (* Recreate with the same derived layout as [a]. *)
  let m = { m with counts = Array.make (Array.length a.counts) 0; bounds = a.bounds } in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  {
    m with
    n = a.n + b.n;
    sum = a.sum + b.sum;
    max_v = max a.max_v b.max_v;
    min_v =
      (if a.n = 0 then b.min_v else if b.n = 0 then a.min_v else min a.min_v b.min_v);
  }

let render ?(width = 40) t =
  let buf = Buffer.create 256 in
  let biggest = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let bar = c * width / biggest in
        Buffer.add_string buf
          (Printf.sprintf "%10.1fus |%s %d\n"
             (float_of_int t.bounds.(i) /. 1000.0)
             (String.make (max 1 bar) '#')
             c)
      end)
    t.counts;
  Buffer.contents buf

let summary t =
  if t.n = 0 then "no samples"
  else
    Printf.sprintf "n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus" t.n
      (mean t /. 1000.0)
      (float_of_int (percentile t 50.0) /. 1000.0)
      (float_of_int (percentile t 90.0) /. 1000.0)
      (float_of_int (percentile t 99.0) /. 1000.0)
      (float_of_int t.max_v /. 1000.0)
