lib/stats/plot.ml: Array Buffer Engine Float List Printf String
