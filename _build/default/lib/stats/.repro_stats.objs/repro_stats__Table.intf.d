lib/stats/table.mli:
