lib/stats/histogram.mli:
