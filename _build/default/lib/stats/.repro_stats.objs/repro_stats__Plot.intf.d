lib/stats/plot.mli: Engine
