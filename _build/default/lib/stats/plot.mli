(** ASCII plots for figure output in the terminal.

    Two chart shapes cover the paper's figures: multi-series line
    charts over a numeric x-axis (Figure 1: execution time vs critical
    section length) and single-series strip charts over virtual time
    (Figures 4–9: waiting threads over the run). CSV export of the
    same data lives in {!Engine.Series.output_csv}. *)

val lines :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [lines series] plots each named series with its own glyph on a
    shared canvas, linearly scaled, with a legend. Empty input renders
    an empty string. *)

val series :
  ?width:int -> ?height:int -> ?buckets:int -> Engine.Series.t -> string
(** Strip chart of a time series (virtual-time x-axis in milliseconds),
    resampled into [buckets] (default [width]) windows. *)
