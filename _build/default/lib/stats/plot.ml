let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let bounds points =
  List.fold_left
    (fun (x0, x1, y0, y1) (x, y) ->
      (Float.min x0 x, Float.max x1 x, Float.min y0 y, Float.max y1 y))
    (infinity, neg_infinity, infinity, neg_infinity)
    points

let lines ?(width = 64) ?(height = 18) ?(x_label = "") ?(y_label = "") named =
  let all_points = List.concat_map snd named in
  if all_points = [] then ""
  else begin
    let x0, x1, y0, y1 = bounds all_points in
    let xspan = if x1 > x0 then x1 -. x0 else 1.0 in
    let yspan = if y1 > y0 then y1 -. y0 else 1.0 in
    let canvas = Array.make_matrix height width ' ' in
    let put x y glyph =
      let col =
        int_of_float (Float.round ((x -. x0) /. xspan *. float_of_int (width - 1)))
      in
      let row =
        height - 1
        - int_of_float (Float.round ((y -. y0) /. yspan *. float_of_int (height - 1)))
      in
      if row >= 0 && row < height && col >= 0 && col < width then canvas.(row).(col) <- glyph
    in
    List.iteri
      (fun i (_, points) ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        (* Interpolate between consecutive points so curves read as
           lines rather than scattered dots. *)
        let rec draw = function
          | (xa, ya) :: ((xb, yb) :: _ as rest) ->
            let steps = max 1 (width / max 1 (List.length points)) * 2 in
            for s = 0 to steps do
              let f = float_of_int s /. float_of_int steps in
              put (xa +. (f *. (xb -. xa))) (ya +. (f *. (yb -. ya))) glyph
            done;
            draw rest
          | [ (x, y) ] -> put x y glyph
          | [] -> ()
        in
        draw points)
      named;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
    Array.iteri
      (fun row line ->
        let y = y1 -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "%10.1f |" y);
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-12.1f%*s%.1f  %s" "" x0 (width - 16) "" x1 x_label);
    Buffer.add_char buf '\n';
    List.iteri
      (fun i (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "   %c = %s\n" glyphs.(i mod Array.length glyphs) name))
      named;
    Buffer.contents buf
  end

let series ?(width = 72) ?(height = 14) ?buckets s =
  let buckets = match buckets with Some b -> b | None -> width in
  let resampled = Engine.Series.resample s ~buckets in
  if Array.length resampled = 0 then ""
  else begin
    let points =
      Array.to_list resampled
      |> List.map (fun (t, v) -> (float_of_int t /. 1_000_000.0, v))
    in
    lines ~width ~height ~x_label:"time (ms)" ~y_label:(Engine.Series.name s)
      [ (Engine.Series.name s, points) ]
  end
