(** Logarithmic-bucket histograms for latency distributions.

    Lock wait times span four orders of magnitude (microseconds of
    spinning to milliseconds of queued handoffs), so buckets grow
    geometrically. Used by the benchmark harness to report wait-time
    percentiles next to the paper's means. *)

type t

val create : ?min_value:int -> ?max_value:int -> ?buckets_per_decade:int -> unit -> t
(** Range defaults: 100 ns to 10 s, 8 buckets per decade. Values
    outside the range clamp into the first/last bucket. *)

val add : t -> int -> unit
(** Record one (non-negative) observation. *)

val count : t -> int
val total : t -> int

val mean : t -> float
(** 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t 50.0] is the median (bucket upper bound containing
    the rank). Raises [Invalid_argument] outside (0, 100]. Returns 0
    when empty. *)

val max_seen : t -> int
val min_seen : t -> int
(** 0 when empty. *)

val merge : t -> t -> t
(** Combine two histograms with identical bucket layouts. Raises
    [Invalid_argument] on layout mismatch. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering of the non-empty buckets. *)

val summary : t -> string
(** One line: count, mean, p50/p90/p99, max — in microseconds. *)
