type t = { headers : string list; mutable rows : string list list (* newest first *) }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch with headers";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = '%' || c = 'x')
       s

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | `Left -> s ^ String.make n ' '
    | `Right -> String.make n ' ' ^ s

let render ?title t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  (match title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row ~header row =
    List.iteri
      (fun i cell ->
        let align = if (not header) && looks_numeric cell then `Right else `Left in
        Buffer.add_string buf ("| " ^ pad align widths.(i) cell ^ " "))
      row;
    Buffer.add_string buf "|\n"
  in
  rule ();
  emit_row ~header:true t.headers;
  rule ();
  List.iter (emit_row ~header:false) rows;
  rule ();
  Buffer.contents buf

let us ns = Printf.sprintf "%.2f" (ns /. 1_000.0)
let us_of_ns ns = us (float_of_int ns)
let ms_of_ns ns = Printf.sprintf "%.1f" (float_of_int ns /. 1_000_000.0)
let pct p = Printf.sprintf "%.1f%%" p
