type t = {
  processors : int;
  instr_ns : int;
  local_read_ns : int;
  local_write_ns : int;
  remote_read_ns : int;
  remote_write_ns : int;
  atomic_extra_ns : int;
  switch_ns : int;
  block_ns : int;
  unblock_ns : int;
  wakeup_latency_ns : int;
  fork_ns : int;
  join_ns : int;
  yield_ns : int;
  contention : bool;
  module_service_ns : int;
  quantum_ns : int option;
  max_events : int;
  seed : int;
}

let default =
  {
    processors = 32;
    instr_ns = 62;
    local_read_ns = 600;
    local_write_ns = 550;
    remote_read_ns = 4000;
    remote_write_ns = 3800;
    atomic_extra_ns = 900;
    switch_ns = 50_000;
    block_ns = 150_000;
    unblock_ns = 180_000;
    wakeup_latency_ns = 120_000;
    fork_ns = 120_000;
    join_ns = 9_000;
    yield_ns = 11_000;
    contention = true;
    module_service_ns = 700;
    quantum_ns = Some 1_000_000;
    max_events = 400_000_000;
    seed = 0x5eed;
  }

let with_processors processors cfg =
  if processors <= 0 then invalid_arg "Config.with_processors: need at least one";
  { cfg with processors }

let instrs cfg n = n * cfg.instr_ns

let uma cfg =
  { cfg with remote_read_ns = cfg.local_read_ns; remote_write_ns = cfg.local_write_ns }

let pp ppf cfg =
  Format.fprintf ppf
    "@[<v>processors = %d@ instr = %dns@ local r/w = %d/%dns@ remote r/w = %d/%dns@ \
     atomic extra = %dns@ switch = %dns@ block/unblock = %d/%dns@ contention = %b@ \
     quantum = %s@]"
    cfg.processors cfg.instr_ns cfg.local_read_ns cfg.local_write_ns cfg.remote_read_ns
    cfg.remote_write_ns cfg.atomic_extra_ns cfg.switch_ns cfg.block_ns cfg.unblock_ns
    cfg.contention
    (match cfg.quantum_ns with None -> "none" | Some q -> string_of_int q ^ "ns")
