(** Machine configuration: the cost model of the simulated multiprocessor.

    All times are in virtual nanoseconds. The default configuration is
    calibrated to the 32-node BBN Butterfly GP1000 of the paper: 68020
    processors around 16 MHz (so roughly 60 ns per instruction), local
    memory references well under a microsecond, remote references a few
    microseconds through the butterfly switch, and thread-package
    operations costing tens of microseconds (the paper's Tables 4–8).

    The simulator charges three kinds of cost:
    - memory access latency (local/remote × read/write/atomic),
    - pure computation ([Ops.work]), expressed by clients either in
      nanoseconds or in instruction counts via [instr_ns],
    - scheduling overheads (context switch, block, unblock, fork). *)

type t = {
  processors : int;  (** number of processors (= memory nodes) *)
  instr_ns : int;  (** cost of one modeled instruction (ns) *)
  local_read_ns : int;  (** read from the local memory module *)
  local_write_ns : int;
  remote_read_ns : int;  (** read through the interconnect *)
  remote_write_ns : int;
  atomic_extra_ns : int;
      (** extra cost of a read-modify-write over read+write at the module *)
  switch_ns : int;  (** context switch between two threads on a processor *)
  block_ns : int;  (** descheduling a thread that blocks *)
  unblock_ns : int;  (** making a blocked thread runnable (charged to waker) *)
  wakeup_latency_ns : int;
      (** delay before a woken thread may first run on its processor *)
  fork_ns : int;  (** cost of creating a thread (charged to parent) *)
  join_ns : int;  (** cost of reaping a finished thread *)
  yield_ns : int;
  contention : bool;
      (** when true, memory modules serialize concurrent accesses *)
  module_service_ns : int;
      (** memory-module occupancy per access when [contention] is on *)
  quantum_ns : int option;
      (** optional preemption quantum: long [Ops.work] spans are sliced
          to this length so sibling threads on the processor interleave *)
  max_events : int;  (** safety valve: abort after this many events *)
  seed : int;  (** seed of the simulation's internal RNG stream *)
}

val default : t
(** GP1000-like machine: 32 processors, 62 ns/instruction, 600/550 ns
    local read/write, 4000/3800 ns remote, contention on, and a 1 ms
    preemption quantum (so a spinning thread cannot starve its
    processor's siblings forever). *)

val with_processors : int -> t -> t
(** [with_processors p cfg] is [cfg] resized to [p] processors. *)

val instrs : t -> int -> int
(** [instrs cfg n] is the virtual-nanosecond cost of executing [n]
    modeled instructions. *)

val uma : t -> t
(** A UMA variant: remote costs equal local costs (used by
    architecture-retargeting ablations). *)

val pp : Format.formatter -> t -> unit
