(** The discrete-event scheduler: runs effect-handled fibers over the
    simulated machine in deterministic virtual time.

    One [t] value is one machine instance. {!run} starts a main thread
    on processor 0 and drives the event loop until every thread has
    finished (or a deadlock / event-limit abort). The dispatch rule
    always picks the processor whose next runnable thread has the
    smallest virtual timestamp, so memory operations linearize in
    virtual-time order across the whole machine and runs are
    bit-for-bit reproducible.

    A [t] is single-use: create a fresh machine per experiment. *)

type t

exception Deadlock of string
(** No thread is runnable but blocked/joining threads remain. The
    payload lists them. *)

exception Event_limit_exceeded
(** The configured [max_events] safety valve fired. *)

exception Thread_crash of string * exn
(** A simulated thread raised; payload is the thread name and the
    original exception. *)

val create : Config.t -> t

val run : ?main_name:string -> t -> (unit -> unit) -> unit
(** [run t main] executes [main] as the first thread (on processor 0)
    and returns when all simulated threads have terminated. Raises
    [Invalid_argument] if this machine already ran. *)

val config : t -> Config.t
val memory : t -> Memory.t

val counters : t -> Engine.Counters.t
(** Machine-level event counters: ["mem.read"], ["mem.write"],
    ["mem.atomic"], ["sched.switches"], ["sched.blocks"],
    ["sched.wakeups"], ["sched.forks"], ["sched.events"], ... *)

val final_time : t -> int
(** Virtual time at which the last event executed (valid after
    {!run}). *)

val processor_busy_ns : t -> int array
(** Per-processor busy time (cpu actually consumed by threads),
    valid after {!run}. *)

val runq_length : t -> int -> int
(** Number of runnable threads currently queued on a processor (used
    by advisory waiting policies and monitors). *)

val live_threads : t -> int

val set_trace_hook : t -> (time:int -> tid:int -> string -> unit) -> unit
(** Install the sink for {!Ops.trace} messages. *)

(** {1 Structured scheduling events}

    A low-overhead instrumentation stream in the spirit of the paper's
    general-purpose thread monitor: when a hook is installed, the
    scheduler emits one event per scheduling action. With no hook
    installed the cost is a single branch. *)

type event_kind =
  | Ev_fork  (** thread created ([tid] is the child) *)
  | Ev_switch  (** processor switched to a different thread *)
  | Ev_preempt  (** quantum expired; thread demoted behind its queue *)
  | Ev_block  (** thread went to sleep *)
  | Ev_wakeup  (** thread was made runnable again *)
  | Ev_finish  (** thread terminated *)

val event_kind_name : event_kind -> string

type event = { time : int; proc : int; tid : int; kind : event_kind }

val set_event_hook : t -> (event -> unit) -> unit

val thread_report : t -> (int * string * int) list
(** [(tid, name, cpu_ns)] for every thread that ran, sorted by tid. *)
