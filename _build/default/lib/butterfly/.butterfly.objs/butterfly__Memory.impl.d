lib/butterfly/memory.ml: Array Config Format Printf
