lib/butterfly/config.mli: Format
