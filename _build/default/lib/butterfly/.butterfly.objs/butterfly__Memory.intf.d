lib/butterfly/memory.mli: Config Format
