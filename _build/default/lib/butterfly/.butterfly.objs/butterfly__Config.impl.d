lib/butterfly/config.ml: Format
