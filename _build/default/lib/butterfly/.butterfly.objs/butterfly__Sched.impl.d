lib/butterfly/sched.ml: Array Config Effect Engine Hashtbl List Memory Ops Option Printf String
