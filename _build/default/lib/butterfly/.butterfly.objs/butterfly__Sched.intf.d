lib/butterfly/sched.mli: Config Engine Memory
