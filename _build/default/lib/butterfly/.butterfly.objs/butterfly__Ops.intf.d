lib/butterfly/ops.mli: Effect Memory
