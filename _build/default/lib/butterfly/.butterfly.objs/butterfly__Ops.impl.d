lib/butterfly/ops.ml: Array Effect Memory
