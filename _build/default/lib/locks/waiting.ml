module Attribute = Adaptive_core.Attribute

type t = {
  spin_count : int Attribute.t;
  delay_ns : int Attribute.t;
  backoff : bool Attribute.t;
  sleep : bool Attribute.t;
  timeout_ns : int Attribute.t;
}

let make ?node ~spin_count ~delay_ns ~backoff ~sleep ~timeout_ns () =
  let node = match node with Some n -> n | None -> Butterfly.Ops.my_processor () in
  {
    spin_count = Attribute.make_at ~name:"spin-time" ~node spin_count;
    delay_ns = Attribute.make_at ~name:"delay-time" ~node delay_ns;
    backoff = Attribute.make_at ~name:"backoff" ~node backoff;
    sleep = Attribute.make_at ~name:"sleep-time" ~node sleep;
    timeout_ns = Attribute.make_at ~name:"timeout" ~node timeout_ns;
  }

let pure_spin ?node () =
  make ?node ~spin_count:max_int ~delay_ns:0 ~backoff:false ~sleep:false ~timeout_ns:0 ()

let backoff_spin ?node ?(delay_ns = 2_000) () =
  make ?node ~spin_count:max_int ~delay_ns ~backoff:true ~sleep:false ~timeout_ns:0 ()

let pure_sleep ?node () =
  make ?node ~spin_count:0 ~delay_ns:0 ~backoff:false ~sleep:true ~timeout_ns:0 ()

let combined ?node ~spins () =
  make ?node ~spin_count:spins ~delay_ns:0 ~backoff:false ~sleep:true ~timeout_ns:0 ()

let conditional ?node ~timeout_ns () =
  make ?node ~spin_count:max_int ~delay_ns:0 ~backoff:false ~sleep:true ~timeout_ns ()

let mixed ?node ~spins ~delay_ns () =
  make ?node ~spin_count:spins ~delay_ns ~backoff:true ~sleep:true ~timeout_ns:0 ()

let describe t =
  let spin = Attribute.get t.spin_count in
  let sleep = Attribute.get t.sleep in
  let delay = Attribute.get t.delay_ns in
  let timeout = Attribute.get t.timeout_ns in
  if not sleep then begin
    if delay > 0 then "spin (back-off)" else "pure spin"
  end
  else if spin = 0 && timeout = 0 then "pure sleep"
  else if timeout > 0 then "conditional sleep/spin"
  else "mixed sleep/spin"

let freeze t =
  Attribute.set_mutability t.spin_count false;
  Attribute.set_mutability t.delay_ns false;
  Attribute.set_mutability t.backoff false;
  Attribute.set_mutability t.sleep false;
  Attribute.set_mutability t.timeout_ns false
