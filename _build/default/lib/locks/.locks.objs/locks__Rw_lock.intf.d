lib/locks/rw_lock.mli:
