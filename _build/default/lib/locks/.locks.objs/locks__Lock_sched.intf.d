lib/locks/lock_sched.mli:
