lib/locks/local_spin_lock.mli: Lock_stats
