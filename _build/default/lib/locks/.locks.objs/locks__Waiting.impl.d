lib/locks/waiting.ml: Adaptive_core Butterfly
