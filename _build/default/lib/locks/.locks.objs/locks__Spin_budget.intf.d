lib/locks/spin_budget.mli: Waiting
