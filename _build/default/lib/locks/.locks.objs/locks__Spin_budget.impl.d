lib/locks/spin_budget.ml: Adaptive_core Printf Waiting
