lib/locks/lock_stats.mli: Engine Format Repro_stats
