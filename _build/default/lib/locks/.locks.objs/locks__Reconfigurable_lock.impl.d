lib/locks/reconfigurable_lock.ml: Adaptive_core Butterfly Lock_core Lock_costs Lock_sched Lock_stats Printf Waiting
