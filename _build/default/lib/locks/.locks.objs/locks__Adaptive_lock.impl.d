lib/locks/adaptive_lock.ml: Adaptive_core Lock_core Lock_costs Lock_stats Reconfigurable_lock Spin_budget Waiting
