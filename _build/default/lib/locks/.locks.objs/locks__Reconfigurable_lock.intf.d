lib/locks/reconfigurable_lock.mli: Lock_core Lock_sched Lock_stats Waiting
