lib/locks/lock_costs.mli: Adaptive_core
