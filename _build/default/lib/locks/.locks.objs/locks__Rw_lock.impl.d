lib/locks/rw_lock.ml: Adaptive_core Array Butterfly Lock_costs Memory Ops
