lib/locks/lock_stats.ml: Engine Format Repro_stats
