lib/locks/lock_core.ml: Adaptive_core Array Butterfly Lock_costs Lock_sched Lock_stats Memory Ops Waiting
