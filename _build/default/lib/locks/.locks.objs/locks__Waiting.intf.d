lib/locks/waiting.mli: Adaptive_core
