lib/locks/lock_core.mli: Butterfly Lock_costs Lock_sched Lock_stats Waiting
