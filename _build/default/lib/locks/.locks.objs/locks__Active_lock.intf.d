lib/locks/active_lock.mli: Lock_stats
