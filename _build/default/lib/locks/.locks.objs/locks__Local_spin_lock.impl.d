lib/locks/local_spin_lock.ml: Array Butterfly Lock_costs Lock_stats Memory Ops
