lib/locks/lock.mli: Adaptive_lock Cthreads Lock_core Lock_sched Lock_stats Reconfigurable_lock
