lib/locks/active_lock.ml: Array Butterfly List Lock_stats Memory Ops Queue
