lib/locks/lock_sched.ml: List
