lib/locks/adaptive_lock.mli: Adaptive_core Lock_sched Lock_stats Reconfigurable_lock
