lib/locks/lock_costs.ml: Adaptive_core
