lib/locks/lock.ml: Adaptive_lock Cthreads Lock_core Lock_costs Printf Reconfigurable_lock Waiting
