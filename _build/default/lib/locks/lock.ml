type kind =
  | Spin
  | Backoff
  | Blocking
  | Combined of int
  | Conditional of int
  | Advisory
  | Reconfigurable
  | Adaptive of Adaptive_lock.params

let kind_name = function
  | Spin -> "spin"
  | Backoff -> "spin-with-backoff"
  | Blocking -> "blocking"
  | Combined k -> Printf.sprintf "combined(%d)" k
  | Conditional ns -> Printf.sprintf "conditional(%dns)" ns
  | Advisory -> "advisory"
  | Reconfigurable -> "reconfigurable"
  | Adaptive _ -> "adaptive"

let adaptive_default = Adaptive Adaptive_lock.default_params

type impl =
  | I_static of Lock_core.t
  | I_reconf of Reconfigurable_lock.t
  | I_adaptive of Adaptive_lock.t

type t = { lock_kind : kind; impl : impl }

let create ?name ?trace ?sched ~home lock_kind =
  let name = match name with Some n -> n | None -> kind_name lock_kind in
  let static policy costs =
    let core = Lock_core.create ~name ?trace ?sched ~home ~policy ~costs () in
    Waiting.freeze policy;
    I_static core
  in
  let impl =
    match lock_kind with
    | Spin -> static (Waiting.pure_spin ~node:home ()) Lock_costs.spin
    | Backoff -> static (Waiting.backoff_spin ~node:home ()) Lock_costs.backoff
    | Blocking -> static (Waiting.pure_sleep ~node:home ()) Lock_costs.blocking
    | Combined k -> static (Waiting.combined ~node:home ~spins:k ()) Lock_costs.combined
    | Conditional ns ->
      static (Waiting.conditional ~node:home ~timeout_ns:ns ()) Lock_costs.combined
    | Advisory ->
      (* Advice may force sleeping, so the unlock path must check the
         queue: use the combined profile with a spin-leaning policy. *)
      let policy = Waiting.combined ~node:home ~spins:8 () in
      I_static
        (Lock_core.create ~name ?trace ?sched ~advisory:true ~home ~policy
           ~costs:Lock_costs.combined ())
    | Reconfigurable -> I_reconf (Reconfigurable_lock.create ~name ?trace ?sched ~home ())
    | Adaptive params ->
      I_adaptive (Adaptive_lock.create ~name ?trace ?sched ~params ~home ())
  in
  { lock_kind; impl }

let kind t = t.lock_kind

let core t =
  match t.impl with
  | I_static c -> c
  | I_reconf r -> Reconfigurable_lock.core r
  | I_adaptive a -> Reconfigurable_lock.core (Adaptive_lock.reconfigurable a)

let name t = Lock_core.name (core t)
let home t = Lock_core.home (core t)
let stats t = Lock_core.stats (core t)

let lock t =
  match t.impl with
  | I_static c -> Lock_core.lock c
  | I_reconf r -> Reconfigurable_lock.lock r
  | I_adaptive a -> Adaptive_lock.lock a

let unlock t =
  match t.impl with
  | I_static c -> Lock_core.unlock c
  | I_reconf r -> Reconfigurable_lock.unlock r
  | I_adaptive a -> Adaptive_lock.unlock a

let try_lock t =
  match t.impl with
  | I_static c -> Lock_core.try_lock c
  | I_reconf r -> Reconfigurable_lock.try_lock r
  | I_adaptive a -> Adaptive_lock.try_lock a

let with_lock t f =
  lock t;
  match f () with
  | v ->
    unlock t;
    v
  | exception e ->
    unlock t;
    raise e

let advise t advice = Lock_core.advise (core t) advice
let set_successor t thread = Lock_core.set_successor (core t) (Cthreads.Cthread.id thread)
let as_adaptive t = match t.impl with I_adaptive a -> Some a | _ -> None
let as_reconfigurable t = match t.impl with I_reconf r -> Some r | _ -> None

let describe t =
  match t.impl with
  | I_static c -> Waiting.describe (Lock_core.policy c)
  | I_reconf r -> Reconfigurable_lock.describe r
  | I_adaptive a -> Printf.sprintf "adaptive: %s" (Adaptive_lock.mode a)
