(** Readers-writer locks, including an adaptive variant.

    The paper's future work proposes applying closely-coupled
    adaptation "in other operating system components as well"; this
    module does it for a second synchronization abstraction. The lock
    has a {e preference} attribute:

    - [Reader_pref]: readers enter whenever no writer holds the lock —
      maximal read concurrency, but a steady read stream starves
      writers;
    - [Writer_pref]: readers also yield to {e waiting} writers —
      bounded writer latency at the cost of read throughput.

    The adaptive variant monitors the waiting-writer count with a
    built-in sensor (sampled at read-side releases) and switches the
    preference attribute: writers queueing up flips it to
    [Writer_pref]; a sustained writer-free stretch flips it back. *)

type preference = Reader_pref | Writer_pref

type t

val create :
  ?name:string ->
  ?preference:preference ->
  ?adaptive:bool ->
  ?sample_period:int ->
  home:int ->
  unit ->
  t
(** [preference] defaults to [Reader_pref]; with [adaptive] (default
    false) the preference becomes a monitored, self-tuning attribute.
    Must run inside a simulation. *)

val name : t -> string
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val preference : t -> preference
val set_preference : t -> preference -> unit

val readers_now : t -> int
(** Active readers (simulated read). *)

val writers_waiting : t -> int

val adaptations : t -> int
(** Preference switches performed by the adaptive variant. *)

val reader_acquisitions : t -> int
val writer_acquisitions : t -> int

val mean_writer_wait_ns : t -> float
val mean_reader_wait_ns : t -> float
