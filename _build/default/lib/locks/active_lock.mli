(** An active-implementation lock: a dedicated lock-server thread.

    The [MS93] recap's second implementation axis is "passive vs active
    locks". A passive lock's methods run on the invoking thread (all
    the other locks in this library); an {e active} lock is owned by a
    server thread on a dedicated processor — clients send
    acquire/release messages and sleep, and the server grants the lock
    in arrival order. Waiters generate no interconnect traffic at all
    while they wait, at the price of two message hops per operation,
    which is the right trade on message-passing (NORMA) and heavily
    contended NUMA configurations and a waste on small UMA ones. *)

type t

val create : ?name:string -> server_proc:int -> unit -> t
(** Forks the server thread pinned to [server_proc] (dedicate that
    processor). The mailbox words live on the server's node. *)

val lock : t -> unit
val unlock : t -> unit

val shutdown : t -> unit
(** Stop and join the server (required before the simulation can
    finish). The lock must be free. *)

val name : t -> string
val stats : t -> Lock_stats.t
