(** Lock scheduling policies: who acquires next.

    The scheduling component of a lock object determines the delay in
    lock acquisition experienced by a thread and consists of three
    disjoint sub-components [MS93]:
    - {b registration} — logging each thread desiring access,
    - {b acquisition} — the waiting mechanism applied to each
      registered thread (the {!Waiting} policy),
    - {b release} — selecting the next thread granted access.

    This module implements the registration and release components for
    the three schedulers the paper compares: FCFS, Priority (highest
    thread priority first), and Handoff (the owner designates a
    successor, as in Black's handoff scheduling; falls back to FCFS
    when no successor was named). *)

type kind = Fcfs | Priority | Handoff

val kind_name : kind -> string

type waiter = { tid : int; prio : int; enqueued_at : int }

type t
(** A waiter queue governed by a (reconfigurable) scheduling kind. *)

val create : kind -> t

val kind : t -> kind

val set_kind : t -> kind -> unit
(** Scheduler reconfiguration (the queue already registered keeps its
    entries; the paper models the changeover delay with a flag, priced
    in {!Lock_costs.configure_scheduler}). *)

val register : t -> waiter -> unit
(** The registration component. *)

val cancel : t -> int -> unit
(** Remove a thread that acquired the lock without sleeping (its
    registration is void). *)

val release_next : t -> successor:int option -> waiter option
(** The release component: pick (and remove) the next waiter according
    to the current kind. [successor] is the owner-designated thread for
    Handoff scheduling; it is honoured only when that thread is
    actually registered. *)

val waiting : t -> int
val is_empty : t -> bool
val waiters : t -> waiter list
(** Registered waiters, front first (for tests and monitors). *)
