type kind = Fcfs | Priority | Handoff

let kind_name = function Fcfs -> "FCFS" | Priority -> "priority" | Handoff -> "handoff"

type waiter = { tid : int; prio : int; enqueued_at : int }

(* The queue is a host-side list kept in FIFO order (front first); the
   simulated cost of queue manipulation is charged by the lock
   implementations at operation granularity. Waiter counts are small,
   so linear scans are fine and keep the release policies obvious. *)
type t = { mutable queue : waiter list; mutable sched_kind : kind }

let create sched_kind = { queue = []; sched_kind }
let kind t = t.sched_kind
let set_kind t k = t.sched_kind <- k
let register t w = t.queue <- t.queue @ [ w ]
let cancel t tid = t.queue <- List.filter (fun w -> w.tid <> tid) t.queue
let waiting t = List.length t.queue
let is_empty t = t.queue = []
let waiters t = t.queue

let take t pred =
  let rec loop acc = function
    | [] -> None
    | w :: rest ->
      if pred w then begin
        t.queue <- List.rev_append acc rest;
        Some w
      end
      else loop (w :: acc) rest
  in
  loop [] t.queue

let take_front t =
  match t.queue with
  | [] -> None
  | w :: rest ->
    t.queue <- rest;
    Some w

let take_highest_priority t =
  match t.queue with
  | [] -> None
  | first :: _ ->
    let best =
      List.fold_left (fun best w -> if w.prio > best.prio then w else best) first t.queue
    in
    take t (fun w -> w.tid = best.tid)

let release_next t ~successor =
  match t.sched_kind with
  | Fcfs -> take_front t
  | Priority -> take_highest_priority t
  | Handoff -> (
    match successor with
    | Some tid -> (
      match take t (fun w -> w.tid = tid) with
      | Some w -> Some w
      | None -> take_front t)
    | None -> take_front t)
