(** A distributed-implementation lock: queue lock with local spinning.

    The [MS93] recap compares "centralized vs distributed locks" as
    implementation re-targeting for different architectures. A
    centralized spin lock makes every waiter hammer one memory module
    through the interconnect; this distributed implementation gives
    each processor its own flag word {e in its local module}, so a
    waiter spins on purely local memory and the releaser performs a
    single remote write to hand the lock over (in the spirit of
    Anderson's array locks and MCS queue locks).

    On the NUMA machine this eliminates both the remote-probe traffic
    and the hot-spot contention; on a UMA machine it buys nothing —
    exactly the architecture-dependence the ablation demonstrates. *)

type t

val create : ?name:string -> home:int -> unit -> t
(** Allocates the tail/guard words at [home] and one flag word in every
    processor's local module. *)

val lock : t -> unit
val unlock : t -> unit
val name : t -> string
val stats : t -> Lock_stats.t
