(** TSP instances: seeded random asymmetric cost matrices.

    The paper runs LMSK (the Little–Murty–Sweeney–Karel branch-and-
    bound, which operates on asymmetric TSP) on a fully connected
    32-city problem; the concrete instance is not published, so we
    generate seeded random matrices — any instance of comparable
    search-tree size produces the same locking-pattern phenomena. *)

type t

val generate : ?max_cost:int -> seed:int -> int -> t
(** [generate ~seed n] is an [n]-city instance with independent
    uniform edge costs in [\[1, max_cost\]] (default 100), asymmetric.
    Deterministic in [seed]. *)

val generate_euclidean : ?scale:float -> seed:int -> int -> t
(** [generate_euclidean ~seed n] places [n] cities uniformly in a
    square and uses rounded Euclidean distances (symmetric costs).
    Symmetric instances are substantially harder for LMSK, giving the
    deeper search trees the parallel experiments need. *)

val of_matrix : int array array -> t
(** Build from an explicit cost matrix (diagonal ignored). Raises
    [Invalid_argument] if not square or smaller than 3. *)

val size : t -> int

val cost : t -> int -> int -> int
(** [cost t i j] is the directed edge cost; [i = j] is forbidden
    (returns a huge sentinel). *)

val tour_cost : t -> int list -> int
(** Cost of a closed tour visiting the given city order. Raises
    [Invalid_argument] when the list is not a permutation of all
    cities. *)

val nearest_neighbour : t -> int list * int
(** Greedy tour (a cheap upper bound and sanity baseline). *)

val pp : Format.formatter -> t -> unit
