(** The LMSK branch-and-bound engine (Little, Murty, Sweeney, Karel
    1963) for the asymmetric TSP.

    Pure, host-side search machinery: matrix reduction bounds,
    maximum-penalty zero-entry branching, include/exclude children with
    subtour-closure forbidding, and leaf completion. The solvers
    (sequential and parallel) own the open-node collections, pruning
    and — when running on the simulated machine — virtual-work
    charging: {!expand} reports the abstract work it performed so
    callers can charge it. *)

type node

val root : Instance.t -> node
(** The reduced initial problem. *)

val bound : node -> int
(** Lower bound on any tour completing this subproblem. *)

val depth : node -> int
(** Number of edges already included. *)

val active : node -> int
(** Cities not yet contracted (the subproblem's matrix dimension). *)

type outcome =
  | Children of node list  (** 0, 1 or 2 feasible subproblems *)
  | Tour of int list * int  (** a completed tour (city order, cost) *)

type expansion = { outcome : outcome; work : int }
(** [work] is in abstract units proportional to the reduction effort
    (about [active]^2). *)

val expand : Instance.t -> node -> expansion
(** Branch a node: selects the maximum-penalty zero entry, builds the
    include/exclude children (dropping infeasible ones), or completes
    the tour when two cities remain. *)

val solve_sequential :
  ?initial:int list * int ->
  ?on_expand:(node -> int -> unit) ->
  Instance.t ->
  (int list * int) * int
(** Best-first sequential solve. Returns ((tour, cost), nodes
    expanded). [on_expand node work] fires after each expansion — the
    simulated sequential baseline charges virtual time there. *)

val brute_force : Instance.t -> int
(** Exact optimum by exhaustive permutation; for tests ([n] <= 10). *)
