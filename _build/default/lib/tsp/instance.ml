let infinity_cost = max_int / 4

type t = { n : int; costs : int array (* flattened n*n *) }

let generate ?(max_cost = 100) ~seed n =
  if n < 3 then invalid_arg "Instance.generate: need at least 3 cities";
  let rng = Engine.Rng.create seed in
  let costs = Array.make (n * n) infinity_cost in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then costs.((i * n) + j) <- 1 + Engine.Rng.int rng max_cost
    done
  done;
  { n; costs }

let generate_euclidean ?(scale = 1000.0) ~seed n =
  if n < 3 then invalid_arg "Instance.generate_euclidean: need at least 3 cities";
  let rng = Engine.Rng.create seed in
  let pts =
    Array.init n (fun _ ->
        let x = Engine.Rng.float rng scale in
        let y = Engine.Rng.float rng scale in
        (x, y))
  in
  let costs = Array.make (n * n) infinity_cost in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let xi, yi = pts.(i) and xj, yj = pts.(j) in
        let d = sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)) in
        costs.((i * n) + j) <- 1 + int_of_float (d /. 10.0)
      end
    done
  done;
  { n; costs }

let of_matrix m =
  let n = Array.length m in
  if n < 3 then invalid_arg "Instance.of_matrix: need at least 3 cities";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Instance.of_matrix: not square")
    m;
  let costs = Array.make (n * n) infinity_cost in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then costs.((i * n) + j) <- m.(i).(j)
    done
  done;
  { n; costs }

let size t = t.n
let cost t i j = t.costs.((i * t.n) + j)

let check_permutation t tour =
  if List.length tour <> t.n then invalid_arg "Instance.tour_cost: wrong length";
  let seen = Array.make t.n false in
  List.iter
    (fun c ->
      if c < 0 || c >= t.n || seen.(c) then invalid_arg "Instance.tour_cost: not a permutation";
      seen.(c) <- true)
    tour

let tour_cost t tour =
  check_permutation t tour;
  match tour with
  | [] -> 0
  | first :: _ ->
    let rec loop acc = function
      | [ last ] -> acc + cost t last first
      | a :: (b :: _ as rest) -> loop (acc + cost t a b) rest
      | [] -> acc
    in
    loop 0 tour

let nearest_neighbour t =
  let visited = Array.make t.n false in
  visited.(0) <- true;
  let rec loop current acc_cost acc_tour remaining =
    if remaining = 0 then (List.rev acc_tour, acc_cost + cost t current 0)
    else begin
      let best = ref (-1) and best_cost = ref infinity_cost in
      for j = 0 to t.n - 1 do
        if (not visited.(j)) && cost t current j < !best_cost then begin
          best := j;
          best_cost := cost t current j
        end
      done;
      visited.(!best) <- true;
      loop !best (acc_cost + !best_cost) (!best :: acc_tour) (remaining - 1)
    end
  in
  loop 0 0 [ 0 ] (t.n - 1)

let pp ppf t = Format.fprintf ppf "tsp-instance(n=%d)" t.n
