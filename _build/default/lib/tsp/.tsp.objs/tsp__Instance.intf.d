lib/tsp/instance.mli: Format
