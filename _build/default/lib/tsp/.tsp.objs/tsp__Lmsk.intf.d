lib/tsp/lmsk.mli: Instance
