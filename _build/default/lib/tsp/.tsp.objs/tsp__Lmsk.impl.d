lib/tsp/lmsk.ml: Array Engine Instance List
