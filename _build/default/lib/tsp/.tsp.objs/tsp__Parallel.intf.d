lib/tsp/parallel.mli: Butterfly Instance Locks
