lib/tsp/instance.ml: Array Engine Format List
