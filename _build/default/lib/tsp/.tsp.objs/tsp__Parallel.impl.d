lib/tsp/parallel.ml: Array Butterfly Config Cthread Cthreads Engine Instance List Lmsk Locks Ops Option Printf Sched
