(** Data-collecting sensors (the monitor module's probes).

    A sensor observes one state variable of an object. Its {b sampling
    rate} is expressed as a period: [tick] actually samples only every
    [period]-th call (the paper's lock monitor samples the number of
    waiting threads "once during every other unlock operation", i.e.
    period 2). Sampling reads the underlying state through the
    simulated machine, so each sample costs virtual time; raising the
    rate buys fresher data at higher overhead — the paper's
    "Monitoring Cost vs. Amount of Information" tradeoff, which the
    sampling-rate ablation sweeps. *)

type 'a t

val make : name:string -> ?period:int -> ?overhead_instrs:int -> (unit -> 'a) -> 'a t
(** [make ~name read] is a sensor evaluating [read] on each sample.
    [period] defaults to 1 (every tick); [overhead_instrs] is the
    bookkeeping charged per actual sample (default 40 modeled
    instructions). *)

val name : 'a t -> string

val tick : 'a t -> 'a option
(** Count one instrumentation event; samples (and returns [Some v])
    when the event count reaches the period. Charges the sampling
    overhead only when a sample is taken. *)

val force : 'a t -> 'a
(** Sample immediately, regardless of period. *)

val period : 'a t -> int
val set_period : 'a t -> int -> unit
val samples_taken : 'a t -> int
val ticks_seen : 'a t -> int

val history : 'a t -> record:('a -> float) -> Engine.Series.t
(** Attach a recording series: every subsequent sample is appended
    (timestamped with virtual time) after conversion by [record].
    Returns the series for later inspection. *)
