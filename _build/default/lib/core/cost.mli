(** Operation costs in the paper's formal model: [t = n1 R n2 W].

    Section 3.1 expresses the cost of state transitions (Upsilon),
    reconfigurations (Psi) and initializations (I) as counts of memory
    reads and writes. A {!t} carries those counts plus optional pure
    computation; {!charge} realizes the cost on the simulated machine
    by actually touching a scratch word at the object's home node, so
    local/remote placement affects the realized latency exactly as it
    does in the paper's Table 8. *)

type t = { reads : int; writes : int; instrs : int }

val zero : t

val make : ?reads:int -> ?writes:int -> ?instrs:int -> unit -> t

val reads_writes : int -> int -> t
(** [reads_writes n1 n2] is the paper's [n1 R n2 W]. *)

val ( + ) : t -> t -> t
(** Costs of composite reconfigurations add (paper §3.1). *)

val pp : Format.formatter -> t -> unit
(** Rendered as the paper writes it, e.g. ["1R 2W"]. *)

val charge : scratch:Butterfly.Memory.addr -> t -> unit
(** Realize the cost from inside a simulated thread: perform [reads]
    reads and [writes] writes on [scratch] plus [instrs] instructions
    of computation. *)
