type 'a t = {
  sensor_name : string;
  read : unit -> 'a;
  mutable sample_period : int;
  mutable countdown : int;
  overhead_instrs : int;
  mutable samples : int;
  mutable ticks : int;
  mutable recorder : ('a -> unit) option;
}

let make ~name ?(period = 1) ?(overhead_instrs = 40) read =
  if period < 1 then invalid_arg "Sensor.make: period must be >= 1";
  {
    sensor_name = name;
    read;
    sample_period = period;
    countdown = period;
    overhead_instrs;
    samples = 0;
    ticks = 0;
    recorder = None;
  }

let name t = t.sensor_name

let sample t =
  t.samples <- t.samples + 1;
  if t.overhead_instrs > 0 then Butterfly.Ops.work_instrs t.overhead_instrs;
  let v = t.read () in
  (match t.recorder with Some record -> record v | None -> ());
  v

let tick t =
  t.ticks <- t.ticks + 1;
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.sample_period;
    Some (sample t)
  end
  else None

let force t = sample t
let period t = t.sample_period

let set_period t p =
  if p < 1 then invalid_arg "Sensor.set_period: period must be >= 1";
  t.sample_period <- p;
  t.countdown <- min t.countdown p

let samples_taken t = t.samples
let ticks_seen t = t.ticks

let history t ~record =
  let series = Engine.Series.create ~name:t.sensor_name () in
  t.recorder <-
    Some (fun v -> Engine.Series.add series ~t:(Butterfly.Ops.now ()) ~v:(record v));
  series
