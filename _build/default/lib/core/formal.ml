type config = { gamma : string; phi : (string * string) list }

let config ?(phi = []) gamma =
  { gamma; phi = List.sort (fun (a, _) (b, _) -> String.compare a b) phi }

let config_equal a b = a.gamma = b.gamma && a.phi = b.phi

let pp_config ppf c =
  Format.fprintf ppf "%s" c.gamma;
  if c.phi <> [] then
    Format.fprintf ppf "{%s}"
      (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) c.phi))

type transition = { at : int; from_ : config; to_ : config; cost : Cost.t }

type space = { members : config list; edges : (string * string) list option }

let space ~configs ?edges () =
  let rec dup = function
    | [] -> None
    | c :: rest -> if List.exists (config_equal c) rest then Some c else dup rest
  in
  (match dup configs with
  | Some c -> invalid_arg (Format.asprintf "Formal.space: duplicate %a" pp_config c)
  | None -> ());
  { members = configs; edges }

(* A candidate matches a member when gammas agree and every attribute
   the member pins has the same value in the candidate. *)
let matches ~member ~candidate =
  member.gamma = candidate.gamma
  && List.for_all
       (fun (k, v) -> List.assoc_opt k candidate.phi = Some v)
       member.phi

let mem s candidate = List.exists (fun member -> matches ~member ~candidate) s.members

let edge_allowed s ~from_ ~to_ =
  match s.edges with
  | None -> mem s from_ && mem s to_
  | Some edges ->
    mem s from_ && mem s to_ && List.mem (from_.gamma, to_.gamma) edges

let validate s ~initial transitions =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  if not (mem s initial) then fail "initial configuration %a not in space" pp_config initial
  else begin
    let rec walk current last_time = function
      | [] -> Ok ()
      | tr :: rest ->
        if tr.at < last_time then fail "transition at %d out of time order" tr.at
        else if not (config_equal tr.from_ current) then
          fail "transition at %d departs from %a but object is in %a" tr.at pp_config
            tr.from_ pp_config current
        else if not (mem s tr.to_) then
          fail "transition at %d reaches %a, outside the space" tr.at pp_config tr.to_
        else if not (edge_allowed s ~from_:tr.from_ ~to_:tr.to_) then
          fail "transition at %d uses forbidden edge %s -> %s" tr.at tr.from_.gamma
            tr.to_.gamma
        else walk tr.to_ tr.at rest
    in
    walk initial min_int transitions
  end

let total_cost transitions =
  List.fold_left (fun acc tr -> Cost.( + ) acc tr.cost) Cost.zero transitions
