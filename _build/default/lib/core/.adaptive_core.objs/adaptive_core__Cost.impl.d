lib/core/cost.ml: Butterfly Format
