lib/core/attribute.ml: Butterfly Memory Ops
