lib/core/cost.mli: Butterfly Format
