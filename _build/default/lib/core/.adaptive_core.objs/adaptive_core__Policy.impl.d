lib/core/policy.ml: Butterfly Cost
