lib/core/formal.mli: Cost Format
