lib/core/sensor.ml: Butterfly Engine
