lib/core/formal.ml: Cost Format List String
