lib/core/policy.mli: Cost
