lib/core/attribute.mli:
