lib/core/adaptive.ml: Butterfly Cost List Policy Sensor
