lib/core/sensor.mli: Engine
