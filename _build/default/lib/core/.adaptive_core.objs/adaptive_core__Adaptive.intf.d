lib/core/adaptive.mli: Cost Policy Sensor
