type decision =
  | No_change
  | Reconfigure of { label : string; cost : Cost.t; apply : unit -> unit }

type 'obs t = 'obs -> decision

let no_op _ = No_change

let reconfigure ~label ?(cost = Cost.reads_writes 1 1) apply =
  Reconfigure { label; cost; apply }

let compose p q obs = match p obs with No_change -> q obs | d -> d

let with_hysteresis ~min_gap policy =
  let last_applied = ref None in
  fun obs ->
    match policy obs with
    | No_change -> No_change
    | Reconfigure _ as d ->
      let now = Butterfly.Ops.now () in
      let too_soon =
        match !last_applied with Some t -> now - t < min_gap | None -> false
      in
      if too_soon then No_change
      else begin
        last_applied := Some now;
        d
      end
