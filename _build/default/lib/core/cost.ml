type t = { reads : int; writes : int; instrs : int }

let zero = { reads = 0; writes = 0; instrs = 0 }
let make ?(reads = 0) ?(writes = 0) ?(instrs = 0) () = { reads; writes; instrs }
let reads_writes reads writes = { reads; writes; instrs = 0 }

let ( + ) a b =
  { reads = a.reads + b.reads; writes = a.writes + b.writes; instrs = a.instrs + b.instrs }

let pp ppf t =
  Format.fprintf ppf "%dR %dW" t.reads t.writes;
  if t.instrs > 0 then Format.fprintf ppf " %di" t.instrs

let charge ~scratch t =
  for _ = 1 to t.reads do
    ignore (Butterfly.Ops.read scratch)
  done;
  for _ = 1 to t.writes do
    Butterfly.Ops.write scratch 0
  done;
  if t.instrs > 0 then Butterfly.Ops.work_instrs t.instrs
