lib/workloads/csweep.ml: Butterfly Config Cthread Cthreads List Locks Printf Sched
