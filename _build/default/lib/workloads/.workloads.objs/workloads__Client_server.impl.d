lib/workloads/client_server.ml: Butterfly Config Cthread Cthreads List Locks Printf Queue Sched
