lib/workloads/client_server.mli: Butterfly Locks
