lib/workloads/csweep.mli: Butterfly Locks
