lib/workloads/phased.mli: Butterfly Locks
