lib/workloads/phased.ml: Adaptive_core Barrier Butterfly Config Cthread Cthreads List Locks Printf Sched
