lib/monitoring/event_log.mli: Butterfly
