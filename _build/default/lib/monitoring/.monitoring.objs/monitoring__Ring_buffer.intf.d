lib/monitoring/ring_buffer.mli:
