lib/monitoring/loose_adaptive_lock.ml: Butterfly Locks Monitor_thread Ops Ring_buffer
