lib/monitoring/event_log.ml: Array Buffer Butterfly Config List Printf Sched String
