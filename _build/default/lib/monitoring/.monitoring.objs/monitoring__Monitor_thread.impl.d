lib/monitoring/monitor_thread.ml: Butterfly Cthreads Locks Ops Ring_buffer
