lib/monitoring/loose_adaptive_lock.mli: Locks
