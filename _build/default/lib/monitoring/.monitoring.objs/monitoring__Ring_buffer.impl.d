lib/monitoring/ring_buffer.ml: Array Butterfly Memory Ops
