lib/monitoring/monitor_thread.mli: Ring_buffer
