open Butterfly
module AL = Locks.Adaptive_lock

type t = {
  reconf : Locks.Reconfigurable_lock.t;
  ring : (int * int) Ring_buffer.t;
  monitor : (int * int) Monitor_thread.t;
  budget : Locks.Spin_budget.t;
  sample_period : int;
  mutable unlocks_until_sample : int;
  mutable adaptation_count : int;
}

let create ?(name = "loose-adaptive-lock") ?trace ?(params = AL.default_params)
    ?ring_capacity ?poll_interval_ns ~home ~monitor_proc () =
  let waiting = Locks.Waiting.combined ~node:home ~spins:params.AL.n () in
  let reconf = Locks.Reconfigurable_lock.create ~name ?trace ~policy:waiting ~home () in
  let ring = Ring_buffer.create ?capacity:ring_capacity ~home () in
  let budget =
    Locks.Spin_budget.create ~threshold:params.AL.waiting_threshold ~n:params.AL.n
      ~cap:params.AL.spin_cap ~init:params.AL.n
  in
  let t_ref = ref None in
  let deliver waiting_count =
    match !t_ref with
    | None -> ()
    | Some t -> (
      match Locks.Spin_budget.step t.budget ~waiting:waiting_count with
      | None -> ()
      | Some _ ->
        (* External agent: must own the attributes to reconfigure. *)
        if Locks.Reconfigurable_lock.acquire_ownership t.reconf then begin
          Locks.Reconfigurable_lock.configure_waiting t.reconf
            ~spin_count:
              (if Locks.Spin_budget.spins t.budget >= params.AL.spin_cap then max_int
               else Locks.Spin_budget.spins t.budget)
            ~sleep:(Locks.Spin_budget.spins t.budget < params.AL.spin_cap)
            ();
          Locks.Reconfigurable_lock.release_ownership t.reconf;
          t.adaptation_count <- t.adaptation_count + 1
        end)
  in
  let monitor =
    Monitor_thread.start_timestamped ~name:(name ^ ".monitor") ?poll_interval_ns
      ~proc:monitor_proc ~ring ~deliver ()
  in
  let t =
    {
      reconf;
      ring;
      monitor;
      budget;
      sample_period = params.AL.sample_period;
      unlocks_until_sample = params.AL.sample_period;
      adaptation_count = 0;
    }
  in
  t_ref := Some t;
  t

let lock t = Locks.Reconfigurable_lock.lock t.reconf

let waiting_count reconf =
  Locks.Lock_core.waiting_now (Locks.Reconfigurable_lock.core reconf)

let unlock t =
  Locks.Reconfigurable_lock.unlock t.reconf;
  t.unlocks_until_sample <- t.unlocks_until_sample - 1;
  if t.unlocks_until_sample <= 0 then begin
    t.unlocks_until_sample <- t.sample_period;
    Ring_buffer.publish t.ring (Ops.now (), waiting_count t.reconf)
  end

let stats t = Locks.Reconfigurable_lock.stats t.reconf
let shutdown t = Monitor_thread.stop t.monitor
let adaptations t = t.adaptation_count
let observations_published t = Ring_buffer.published t.ring
let observations_processed t = Monitor_thread.processed t.monitor
let max_lag_ns t = Monitor_thread.max_lag_ns t.monitor
let mode t = Locks.Spin_budget.mode t.budget
