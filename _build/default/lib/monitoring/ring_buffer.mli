(** Shared trace ring buffer between application threads and a monitor
    thread.

    Producers (application threads executing instrumented operations)
    publish records; a single consumer (the monitor thread on its
    dedicated processor) drains them. Head/tail cursors live in
    simulated memory at the buffer's home node, so publishing from a
    remote node pays interconnect latency — the transport cost that
    makes the general-purpose monitor "too loosely coupled" for
    adaptive objects (paper §5.1).

    Overflow policy: the ring overwrites the oldest unread record and
    counts it as dropped (monitoring data is lossy by nature). *)

type 'a t

val create : ?capacity:int -> home:int -> unit -> 'a t
(** [capacity] defaults to 256 records. Must run inside a
    simulation. *)

val publish : 'a t -> 'a -> unit
(** Append a record: one atomic claim plus one write at the buffer's
    home node. Safe from any simulated thread. *)

val consume : 'a t -> 'a option
(** Take the oldest unread record, if any (single consumer): one read
    plus one write at the home node when a record is present. *)

val length : 'a t -> int
(** Unread records (simulated reads). *)

val published : 'a t -> int
val consumed : 'a t -> int

val dropped : 'a t -> int
(** Records lost to overwriting. *)
