(* Tests of the formal configuration-space model (paper section 3.1),
   including validating an actual adaptive lock's simple-adapt
   trajectory against the waiting-policy space. *)

module F = Adaptive_core.Formal
module Cost = Adaptive_core.Cost

let check_bool = Alcotest.(check bool)

let spin = F.config "pure spin"
let blocking = F.config "pure blocking"
let combined = F.config "combined"

let waiting_space =
  (* The section 5.1 waiting-policy space: simple-adapt may jump from
     anything to pure spin (zero waiters), descend combined -> blocking,
     and grow blocking -> combined -> spin. *)
  F.space
    ~configs:[ spin; blocking; combined ]
    ~edges:
      [
        ("pure spin", "combined");
        ("pure spin", "pure blocking");
        ("combined", "combined");
        ("combined", "pure spin");
        ("combined", "pure blocking");
        ("pure blocking", "combined");
        ("pure blocking", "pure spin");
      ]
    ()

let tr at from_ to_ = { F.at; from_; to_; cost = Cost.reads_writes 1 1 }

let test_membership () =
  check_bool "spin in space" true (F.mem waiting_space spin);
  check_bool "unknown not in space" false (F.mem waiting_space (F.config "handoff"))

let test_membership_with_attributes () =
  let s = F.space ~configs:[ F.config ~phi:[ ("sleep", "false") ] "spin" ] () in
  check_bool "candidate with extra attrs matches" true
    (F.mem s (F.config ~phi:[ ("sleep", "false"); ("spins", "10") ] "spin"));
  check_bool "conflicting attr rejected" false
    (F.mem s (F.config ~phi:[ ("sleep", "true") ] "spin"))

let test_duplicate_rejected () =
  check_bool "duplicate member rejected" true
    (try
       ignore (F.space ~configs:[ spin; spin ] ());
       false
     with Invalid_argument _ -> true)

let test_validate_good_chain () =
  let log = [ tr 10 combined spin; tr 20 spin blocking; tr 30 blocking combined ] in
  check_bool "valid chain accepted" true (F.validate waiting_space ~initial:combined log = Ok ())

let test_validate_broken_chain () =
  let log = [ tr 10 combined spin; tr 20 combined blocking ] in
  (match F.validate waiting_space ~initial:combined log with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "discontinuous chain accepted")

let test_validate_time_order () =
  let log = [ tr 20 combined spin; tr 10 spin combined ] in
  (match F.validate waiting_space ~initial:combined log with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "time-disordered chain accepted")

let test_validate_forbidden_edge () =
  let s = F.space ~configs:[ spin; blocking ] ~edges:[ ("pure spin", "pure blocking") ] () in
  (match F.validate s ~initial:blocking [ tr 5 blocking spin ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forbidden edge accepted")

let test_total_cost_adds () =
  let log = [ tr 1 combined spin; tr 2 spin combined ] in
  let c = F.total_cost log in
  Alcotest.(check int) "reads" 2 c.Cost.reads;
  Alcotest.(check int) "writes" 2 c.Cost.writes

(* Classify an adaptive lock's log labels into the formal space. *)
let classify label =
  if label = "pure spin" then spin
  else if label = "pure blocking" then blocking
  else combined

let test_adaptive_lock_log_stays_in_space () =
  let cfg = { Butterfly.Config.default with Butterfly.Config.processors = 8 } in
  let sim = Butterfly.Sched.create cfg in
  let log = ref [] in
  Butterfly.Sched.run sim (fun () ->
      let lk = Locks.Adaptive_lock.create ~home:0 () in
      (* Quiet phase, storm, quiet: forces several reconfigurations. *)
      for _ = 1 to 12 do
        Locks.Adaptive_lock.lock lk;
        Cthreads.Cthread.work 2_000;
        Locks.Adaptive_lock.unlock lk
      done;
      let ts =
        List.init 6 (fun i ->
            Cthreads.Cthread.fork ~proc:(i + 1) (fun () ->
                for _ = 1 to 10 do
                  Locks.Adaptive_lock.lock lk;
                  Cthreads.Cthread.work 300_000;
                  Locks.Adaptive_lock.unlock lk
                done))
      in
      Cthreads.Cthread.join_all ts;
      log := Adaptive_core.Adaptive.log (Locks.Adaptive_lock.feedback lk));
  (* Rebuild the transition chain from the label log. *)
  let initial = combined in
  let transitions, _ =
    List.fold_left
      (fun (acc, current) (at, label) ->
        let next = classify label in
        ({ F.at; from_ = current; to_ = next; cost = Cost.reads_writes 1 1 } :: acc, next))
      ([], initial) !log
  in
  let transitions = List.rev transitions in
  check_bool "trajectory non-trivial" true (List.length transitions >= 2);
  match F.validate waiting_space ~initial transitions with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "simple-adapt left the declared space: %s" msg

let suite =
  [
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "attribute matching" `Quick test_membership_with_attributes;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "valid chain" `Quick test_validate_good_chain;
    Alcotest.test_case "broken chain" `Quick test_validate_broken_chain;
    Alcotest.test_case "time order" `Quick test_validate_time_order;
    Alcotest.test_case "forbidden edge" `Quick test_validate_forbidden_edge;
    Alcotest.test_case "cost algebra" `Quick test_total_cost_adds;
    Alcotest.test_case "simple-adapt trajectory in space" `Quick
      test_adaptive_lock_log_stays_in_space;
  ]
