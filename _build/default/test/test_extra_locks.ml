(* Tests for the implementation-retargeting lock variants (local-spin
   and active) and the cthreads condition variable. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_local_spin_mutual_exclusion () =
  let counter = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Local_spin_lock.create ~home:1 () in
        let body () =
          for _ = 1 to 20 do
            Locks.Local_spin_lock.lock lk;
            let v = !counter in
            Cthread.work 3_000;
            counter := v + 1;
            Locks.Local_spin_lock.unlock lk
          done
        in
        let ts = List.init 5 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts)
  in
  check_int "no lost updates" 100 !counter

let test_local_spin_fifo () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Local_spin_lock.create ~home:1 () in
        Locks.Local_spin_lock.lock lk;
        let waiter i =
          Cthread.fork ~proc:(i + 1) (fun () ->
              Cthread.work (i * 100_000);
              Locks.Local_spin_lock.lock lk;
              order := i :: !order;
              Locks.Local_spin_lock.unlock lk)
        in
        let ts = List.init 3 waiter in
        Cthread.work 800_000;
        Locks.Local_spin_lock.unlock lk;
        Cthread.join_all ts)
  in
  Alcotest.(check (list int)) "arrival order" [ 0; 1; 2 ] (List.rev !order)

let test_local_spin_spins_locally () =
  (* Waiters probe their local flag, so waiting should add almost no
     remote accesses compared to the handoff itself. *)
  let sim =
    run (fun () ->
        let lk = Locks.Local_spin_lock.create ~home:1 () in
        let body () =
          for _ = 1 to 10 do
            Locks.Local_spin_lock.lock lk;
            Cthread.work 100_000;
            Locks.Local_spin_lock.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts)
  in
  let c = Sched.counters sim in
  (* Spin probes are local reads; the probes recorded in stats must not
     show up as remote traffic (only handoffs/guard ops do). *)
  check_bool "bounded remote traffic" true
    (Memory.remote_accesses (Sched.memory sim) < Engine.Counters.get c "mem.read" + 2_000)

let test_active_lock_mutual_exclusion () =
  let counter = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Active_lock.create ~server_proc:7 () in
        let body () =
          for _ = 1 to 10 do
            Locks.Active_lock.lock lk;
            let v = !counter in
            Cthread.work 3_000;
            counter := v + 1;
            Locks.Active_lock.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts;
        Locks.Active_lock.shutdown lk)
  in
  check_int "no lost updates" 40 !counter

let test_active_lock_grants_in_order () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Active_lock.create ~server_proc:7 () in
        Locks.Active_lock.lock lk;
        let waiter i =
          Cthread.fork ~proc:(i + 1) (fun () ->
              Cthread.work (i * 150_000);
              Locks.Active_lock.lock lk;
              order := i :: !order;
              Locks.Active_lock.unlock lk)
        in
        let ts = List.init 3 waiter in
        Cthread.work 1_200_000;
        Locks.Active_lock.unlock lk;
        Cthread.join_all ts;
        Locks.Active_lock.shutdown lk)
  in
  Alcotest.(check (list int)) "FIFO grants" [ 0; 1; 2 ] (List.rev !order)

let test_condition_signal () =
  let got = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let cv = Condition.create ~node:0 () in
        let ready = ref false in
        let consumer =
          Cthread.fork ~proc:1 (fun () ->
              Spin.lock mu;
              while not !ready do
                Condition.wait cv mu
              done;
              got := 42;
              Spin.unlock mu)
        in
        Cthread.work 300_000;
        Spin.lock mu;
        ready := true;
        Spin.unlock mu;
        Condition.signal cv;
        Cthread.join consumer)
  in
  check_int "consumer saw the update" 42 !got

let test_condition_signal_before_wait_not_lost () =
  (* Mesa semantics with registration before releasing the mutex: a
     signal issued while the waiter holds the mutex cannot be lost. *)
  let woke = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let cv = Condition.create ~node:0 () in
        let flag = ref false in
        let waiter =
          Cthread.fork ~proc:1 (fun () ->
              Spin.lock mu;
              while not !flag do
                Condition.wait cv mu
              done;
              woke := true;
              Spin.unlock mu)
        in
        Cthread.work 400_000;
        Spin.lock mu;
        flag := true;
        Spin.unlock mu;
        Condition.signal cv;
        Cthread.join waiter)
  in
  check_bool "waiter woke" true !woke

let test_condition_broadcast () =
  let done_count = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let cv = Condition.create ~node:0 () in
        let go = ref false in
        let body () =
          Spin.lock mu;
          while not !go do
            Condition.wait cv mu
          done;
          incr done_count;
          Spin.unlock mu
        in
        let ts = List.init 5 (fun i -> Cthread.fork ~proc:(1 + (i mod 6)) body) in
        Cthread.work 500_000;
        Spin.lock mu;
        go := true;
        Spin.unlock mu;
        Condition.broadcast cv;
        Cthread.join_all ts)
  in
  check_int "all five woke" 5 !done_count

let test_condition_producer_consumer () =
  let consumed = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let nonempty = Condition.create ~node:0 () in
        let q = Queue.create () in
        let producer =
          Cthread.fork ~proc:1 (fun () ->
              for i = 1 to 10 do
                Cthread.work 20_000;
                Spin.lock mu;
                Queue.add i q;
                Spin.unlock mu;
                Condition.signal nonempty
              done)
        in
        let consumer =
          Cthread.fork ~proc:2 (fun () ->
              for _ = 1 to 10 do
                Spin.lock mu;
                while Queue.is_empty q do
                  Condition.wait nonempty mu
                done;
                consumed := Queue.take q :: !consumed;
                Spin.unlock mu
              done)
        in
        Cthread.join producer;
        Cthread.join consumer)
  in
  Alcotest.(check (list int)) "all items in order" (List.init 10 (fun i -> i + 1))
    (List.rev !consumed)

let suite =
  [
    Alcotest.test_case "local-spin mutual exclusion" `Quick test_local_spin_mutual_exclusion;
    Alcotest.test_case "local-spin FIFO" `Quick test_local_spin_fifo;
    Alcotest.test_case "local-spin local probing" `Quick test_local_spin_spins_locally;
    Alcotest.test_case "active lock mutual exclusion" `Quick test_active_lock_mutual_exclusion;
    Alcotest.test_case "active lock FIFO grants" `Quick test_active_lock_grants_in_order;
    Alcotest.test_case "condition signal" `Quick test_condition_signal;
    Alcotest.test_case "condition no lost signal" `Quick
      test_condition_signal_before_wait_not_lost;
    Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
    Alcotest.test_case "condition producer/consumer" `Quick test_condition_producer_consumer;
  ]
