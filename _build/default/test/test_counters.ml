(* Counter-bag tests. *)

let test_basics () =
  let c = Engine.Counters.create () in
  Alcotest.(check int) "unset reads zero" 0 (Engine.Counters.get c "x");
  Engine.Counters.incr c "x";
  Engine.Counters.incr c "x";
  Alcotest.(check int) "incremented" 2 (Engine.Counters.get c "x");
  Engine.Counters.add c "x" (-5);
  Alcotest.(check int) "negative add" (-3) (Engine.Counters.get c "x");
  Engine.Counters.set c "y" 9;
  Alcotest.(check int) "set" 9 (Engine.Counters.get c "y")

let test_reset_keeps_names () =
  let c = Engine.Counters.create () in
  Engine.Counters.incr c "a";
  Engine.Counters.incr c "b";
  Engine.Counters.reset c;
  Alcotest.(check int) "zeroed" 0 (Engine.Counters.get c "a");
  Alcotest.(check int) "names kept" 2 (List.length (Engine.Counters.to_list c))

let test_to_list_sorted () =
  let c = Engine.Counters.create () in
  Engine.Counters.set c "zebra" 1;
  Engine.Counters.set c "ant" 2;
  Engine.Counters.set c "mole" 3;
  Alcotest.(check (list string)) "sorted names" [ "ant"; "mole"; "zebra" ]
    (List.map fst (Engine.Counters.to_list c))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "reset keeps names" `Quick test_reset_keeps_names;
    Alcotest.test_case "sorted listing" `Quick test_to_list_sorted;
  ]
