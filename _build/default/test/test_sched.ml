(* Tests of the discrete-event scheduler: virtual time accounting,
   fork/join, block/wakeup, determinism, linearization of atomics. *)

open Butterfly

let small_cfg =
  {
    Config.default with
    Config.processors = 4;
    switch_ns = 1_000;
    block_ns = 2_000;
    unblock_ns = 1_500;
    wakeup_latency_ns = 500;
    fork_ns = 3_000;
    join_ns = 400;
    yield_ns = 700;
    contention = false;
    quantum_ns = None;
  }

let run_sim ?(cfg = small_cfg) main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty_main () =
  let sim = run_sim (fun () -> ()) in
  check_int "no time consumed" 0 (Sched.final_time sim)

let test_work_advances_time () =
  let sim = run_sim (fun () -> Ops.work 12_345) in
  check_int "final time equals the work" 12_345 (Sched.final_time sim)

let test_work_instrs_scaling () =
  let sim = run_sim (fun () -> Ops.work_instrs 100) in
  check_int "instructions scale by instr_ns" (100 * small_cfg.Config.instr_ns)
    (Sched.final_time sim)

let test_now_tracks_work () =
  let seen = ref (-1) in
  let (_ : Sched.t) =
    run_sim (fun () ->
        Ops.work 5_000;
        seen := Ops.now ())
  in
  check_int "now after work" 5_000 !seen

let test_memory_read_write () =
  let result = ref 0 in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let a = Ops.alloc1 ~node:0 () in
        Ops.write a 42;
        result := Ops.read a)
  in
  check_int "read back what was written" 42 !result

let test_local_vs_remote_latency () =
  let local_elapsed = ref 0 and remote_elapsed = ref 0 in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let local = Ops.alloc1 ~node:0 () in
        let remote = Ops.alloc1 ~node:1 () in
        let t0 = Ops.now () in
        let (_ : int) = Ops.read local in
        let t1 = Ops.now () in
        let (_ : int) = Ops.read remote in
        let t2 = Ops.now () in
        local_elapsed := t1 - t0;
        remote_elapsed := t2 - t1)
  in
  check_int "local read latency" small_cfg.Config.local_read_ns !local_elapsed;
  check_int "remote read latency" small_cfg.Config.remote_read_ns !remote_elapsed

let test_fetch_and_or_semantics () =
  let prev1 = ref (-1) and prev2 = ref (-1) and final = ref (-1) in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let a = Ops.alloc1 ~node:0 () in
        prev1 := Ops.fetch_and_or a 1;
        prev2 := Ops.fetch_and_or a 2;
        final := Ops.read a)
  in
  check_int "first returns 0" 0 !prev1;
  check_int "second returns 1" 1 !prev2;
  check_int "final value is or of both" 3 !final

let test_cas () =
  let ok = ref false and ko = ref true and v = ref 0 in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let a = Ops.alloc1 ~node:0 () in
        Ops.write a 7;
        ok := Ops.compare_and_swap a ~expected:7 ~desired:9;
        ko := Ops.compare_and_swap a ~expected:7 ~desired:11;
        v := Ops.read a)
  in
  check_bool "first cas succeeds" true !ok;
  check_bool "second cas fails" false !ko;
  check_int "value is from the successful cas" 9 !v

let test_fork_join () =
  let child_ran = ref false and order = ref [] in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let tid =
          Ops.fork
            {
              f =
                (fun () ->
                  Ops.work 10_000;
                  child_ran := true;
                  order := "child" :: !order);
              proc = Some 1;
              prio = 0;
              name = "child";
            }
        in
        Ops.join tid;
        order := "parent" :: !order)
  in
  check_bool "child ran" true !child_ran;
  Alcotest.(check (list string)) "join ordered after child" [ "parent"; "child" ] !order

let test_parallel_speedup () =
  (* Two threads of equal work on distinct processors should finish in
     roughly half the serial time. *)
  let work = 1_000_000 in
  let serial = run_sim (fun () -> Ops.work (2 * work)) in
  let parallel =
    run_sim (fun () ->
        let spawn p =
          Ops.fork { f = (fun () -> Ops.work work); proc = Some p; prio = 0; name = "w" }
        in
        let a = spawn 1 and b = spawn 2 in
        Ops.join a;
        Ops.join b)
  in
  check_bool "parallel at most ~half of serial + overheads"
    true
    (Sched.final_time parallel < Sched.final_time serial);
  check_bool "parallel at least the single-thread work" true
    (Sched.final_time parallel >= work)

let test_same_proc_serialization () =
  (* Two threads pinned to the same processor serialize. *)
  let work = 500_000 in
  let sim =
    run_sim (fun () ->
        let spawn () =
          Ops.fork { f = (fun () -> Ops.work work); proc = Some 1; prio = 0; name = "w" }
        in
        let a = spawn () and b = spawn () in
        Ops.join a;
        Ops.join b)
  in
  check_bool "two same-proc workers take at least 2x work" true
    (Sched.final_time sim >= 2 * work)

let test_block_wakeup () =
  let woke = ref false in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let sleeper =
          Ops.fork
            {
              f =
                (fun () ->
                  Ops.block ();
                  woke := true);
              proc = Some 1;
              prio = 0;
              name = "sleeper";
            }
        in
        Ops.work 50_000;
        Ops.wakeup sleeper;
        Ops.join sleeper)
  in
  check_bool "sleeper woke" true !woke

let test_wakeup_before_block_not_lost () =
  let woke = ref false in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let sleeper =
          Ops.fork
            {
              f =
                (fun () ->
                  (* Sleeper delays so the wakeup arrives first. *)
                  Ops.work 100_000;
                  Ops.block ();
                  woke := true);
              proc = Some 1;
              prio = 0;
              name = "sleeper";
            }
        in
        Ops.wakeup sleeper;
        Ops.join sleeper)
  in
  check_bool "early wakeup is not lost" true !woke

let test_deadlock_detection () =
  Alcotest.check_raises "deadlock raises"
    (Sched.Deadlock "main(#0 blocked)")
    (fun () ->
      let sim = Sched.create small_cfg in
      Sched.run sim (fun () -> Ops.block ()))

let test_thread_crash_propagates () =
  let sim = Sched.create small_cfg in
  let raised =
    try
      Sched.run sim (fun () -> failwith "boom");
      false
    with Sched.Thread_crash (name, Failure msg) -> name = "main" && msg = "boom"
  in
  check_bool "crash propagates with thread name" true raised

let test_delay_releases_processor () =
  (* A delaying thread lets a sibling on the same processor run. *)
  let sibling_done_at = ref 0 in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let delayer =
          Ops.fork
            {
              f = (fun () -> Ops.delay 1_000_000);
              proc = Some 1;
              prio = 0;
              name = "delayer";
            }
        in
        let sibling =
          Ops.fork
            {
              f =
                (fun () ->
                  Ops.work 10_000;
                  sibling_done_at := Ops.now ());
              proc = Some 1;
              prio = 0;
              name = "sibling";
            }
        in
        Ops.join delayer;
        Ops.join sibling)
  in
  check_bool "sibling finished well before the delay elapsed" true
    (!sibling_done_at < 1_000_000)

let test_work_occupies_processor () =
  (* Pure computation (work) keeps a same-processor sibling off the cpu. *)
  let sibling_done_at = ref 0 in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let spinner =
          Ops.fork
            { f = (fun () -> Ops.work 1_000_000); proc = Some 1; prio = 0; name = "spinner" }
        in
        Ops.work 1_000;
        (* sibling forked after the spinner is already running *)
        let sibling =
          Ops.fork
            {
              f =
                (fun () ->
                  Ops.work 10_000;
                  sibling_done_at := Ops.now ());
              proc = Some 1;
              prio = 0;
              name = "sibling";
            }
        in
        Ops.join spinner;
        Ops.join sibling)
  in
  check_bool "sibling had to wait for the spinner" true (!sibling_done_at >= 1_000_000)

let test_quantum_interleaves_work () =
  let cfg = { small_cfg with Config.quantum_ns = Some 10_000 } in
  let sibling_done_at = ref 0 in
  let (_ : Sched.t) =
    run_sim ~cfg (fun () ->
        let spinner =
          Ops.fork
            { f = (fun () -> Ops.work 1_000_000); proc = Some 1; prio = 0; name = "spinner" }
        in
        Ops.work 1_000;
        let sibling =
          Ops.fork
            {
              f =
                (fun () ->
                  Ops.work 10_000;
                  sibling_done_at := Ops.now ());
              proc = Some 1;
              prio = 0;
              name = "sibling";
            }
        in
        Ops.join spinner;
        Ops.join sibling)
  in
  check_bool "quantum lets the sibling in early" true (!sibling_done_at < 200_000)

let test_determinism () =
  let run () =
    let trace = Buffer.create 64 in
    let (_ : Sched.t) =
      run_sim (fun () ->
          let a = Ops.alloc1 ~node:0 () in
          let workers =
            List.init 4 (fun i ->
                Ops.fork
                  {
                    f =
                      (fun () ->
                        for _ = 1 to 10 do
                          let v = Ops.fetch_and_add a 1 in
                          Ops.work (100 + (v mod 7) * 50)
                        done);
                    proc = Some (i mod 3);
                    prio = 0;
                    name = Printf.sprintf "w%d" i;
                  })
          in
          List.iter Ops.join workers;
          Buffer.add_string trace (string_of_int (Ops.read a));
          Buffer.add_char trace '@';
          Buffer.add_string trace (string_of_int (Ops.now ())))
    in
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let test_atomic_linearization () =
  (* Concurrent fetch_and_add from many processors must not lose
     increments. *)
  let expected = 8 * 200 in
  let total = ref (-1) in
  let (_ : Sched.t) =
    run_sim
      ~cfg:{ small_cfg with Config.processors = 8; contention = true }
      (fun () ->
        let a = Ops.alloc1 ~node:0 () in
        let workers =
          List.init 8 (fun i ->
              Ops.fork
                {
                  f =
                    (fun () ->
                      for _ = 1 to 200 do
                        ignore (Ops.fetch_and_add a 1)
                      done);
                  proc = Some i;
                  prio = 0;
                  name = Printf.sprintf "adder%d" i;
                })
        in
        List.iter Ops.join workers;
        total := Ops.read a)
  in
  check_int "no lost increments" expected !total

let test_contention_slows_hot_module () =
  let elapsed contention =
    let sim =
      run_sim
        ~cfg:{ small_cfg with Config.processors = 8; contention }
        (fun () ->
          let a = Ops.alloc1 ~node:0 () in
          let workers =
            List.init 8 (fun i ->
                Ops.fork
                  {
                    f =
                      (fun () ->
                        for _ = 1 to 100 do
                          ignore (Ops.fetch_and_add a 1)
                        done);
                    proc = Some i;
                    prio = 0;
                    name = "w";
                  })
          in
          List.iter Ops.join workers)
    in
    Sched.final_time sim
  in
  check_bool "contended run is slower" true (elapsed true > elapsed false)

let test_counters_populated () =
  let sim =
    run_sim (fun () ->
        let a = Ops.alloc1 ~node:0 () in
        Ops.write a 1;
        ignore (Ops.read a);
        ignore (Ops.fetch_and_add a 1))
  in
  let c = Sched.counters sim in
  check_int "one tracked read" 1 (Engine.Counters.get c "mem.read");
  check_int "one tracked write" 1 (Engine.Counters.get c "mem.write");
  check_int "one tracked atomic" 1 (Engine.Counters.get c "mem.atomic")

let test_single_use () =
  let sim = Sched.create small_cfg in
  Sched.run sim (fun () -> ());
  let raised =
    try
      Sched.run sim (fun () -> ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "second run rejected" true raised

let test_priorities_stored () =
  let seen = ref (-1) in
  let (_ : Sched.t) =
    run_sim (fun () ->
        let tid =
          Ops.fork { f = (fun () -> Ops.work 10); proc = None; prio = 3; name = "p" }
        in
        Ops.set_priority tid 7;
        seen := Ops.priority_of tid;
        Ops.join tid)
  in
  check_int "priority readable" 7 !seen

let suite =
  [
    Alcotest.test_case "empty main" `Quick test_empty_main;
    Alcotest.test_case "work advances time" `Quick test_work_advances_time;
    Alcotest.test_case "work_instrs scales" `Quick test_work_instrs_scaling;
    Alcotest.test_case "now tracks work" `Quick test_now_tracks_work;
    Alcotest.test_case "memory read/write" `Quick test_memory_read_write;
    Alcotest.test_case "local vs remote latency" `Quick test_local_vs_remote_latency;
    Alcotest.test_case "fetch_and_or" `Quick test_fetch_and_or_semantics;
    Alcotest.test_case "cas" `Quick test_cas;
    Alcotest.test_case "fork/join" `Quick test_fork_join;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "same-proc serialization" `Quick test_same_proc_serialization;
    Alcotest.test_case "block/wakeup" `Quick test_block_wakeup;
    Alcotest.test_case "early wakeup not lost" `Quick test_wakeup_before_block_not_lost;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "thread crash propagates" `Quick test_thread_crash_propagates;
    Alcotest.test_case "delay releases processor" `Quick test_delay_releases_processor;
    Alcotest.test_case "work occupies processor" `Quick test_work_occupies_processor;
    Alcotest.test_case "quantum interleaves" `Quick test_quantum_interleaves_work;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "atomic linearization" `Quick test_atomic_linearization;
    Alcotest.test_case "contention slows hot module" `Quick test_contention_slows_hot_module;
    Alcotest.test_case "counters populated" `Quick test_counters_populated;
    Alcotest.test_case "machine is single-use" `Quick test_single_use;
    Alcotest.test_case "priorities stored" `Quick test_priorities_stored;
  ]
