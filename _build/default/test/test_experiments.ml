(* Experiment-harness tests: the paper tables' qualitative shapes on
   miniature configurations, plus figure/report plumbing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find_row rows name =
  List.find (fun (r : Experiments.Lock_tables.row) -> r.Experiments.Lock_tables.op = name) rows

let test_table4_shape () =
  let rows = Experiments.Lock_tables.table4 () in
  check_int "five locks" 5 (List.length rows);
  let v name = (find_row rows name).Experiments.Lock_tables.local_us in
  check_bool "atomior cheapest" true (v "atomior" < v "spin-lock");
  check_bool "spin = adaptive (initially spins)" true
    (Float.abs (v "spin-lock" -. v "adaptive lock") < 2.0);
  check_bool "blocking most expensive" true (v "blocking-lock" > v "spin-lock");
  List.iter
    (fun (r : Experiments.Lock_tables.row) ->
      check_bool
        (r.Experiments.Lock_tables.op ^ ": remote >= local")
        true
        (r.Experiments.Lock_tables.remote_us >= r.Experiments.Lock_tables.local_us))
    rows

let test_table4_matches_paper_locally () =
  (* The local column is calibrated: within 5% of the paper. *)
  List.iter
    (fun (p : Experiments.Paper.lock_op_row) ->
      let r = find_row (Experiments.Lock_tables.table4 ()) p.Experiments.Paper.lock_name in
      let err =
        Float.abs (r.Experiments.Lock_tables.local_us -. p.Experiments.Paper.local_us)
        /. p.Experiments.Paper.local_us
      in
      check_bool (p.Experiments.Paper.lock_name ^ " within 5%") true (err < 0.05))
    Experiments.Paper.table4

let test_table5_shape () =
  let rows = Experiments.Lock_tables.table5 () in
  let v name = (find_row rows name).Experiments.Lock_tables.local_us in
  check_bool "unlock: spin < adaptive" true (v "spin-lock" < v "adaptive lock");
  check_bool "unlock: adaptive < blocking" true (v "adaptive lock" < v "blocking-lock")

let test_table6_shape () =
  let rows = Experiments.Lock_tables.table6 () in
  let v name = (find_row rows name).Experiments.Lock_tables.local_us in
  check_bool "cycle: spin < backoff" true (v "spin" < v "spin-with-backoff");
  check_bool "cycle: spin < blocking" true (v "spin" < v "blocking-lock")

let test_table7_shape () =
  let rows = Experiments.Lock_tables.table7 () in
  let v name = (find_row rows name).Experiments.Lock_tables.local_us in
  check_bool "adaptive-as-spin cheaper than adaptive-as-blocking" true
    (v "spin" < v "blocking")

let test_table8_shape () =
  let rows = Experiments.Lock_tables.table8 () in
  let v name = (find_row rows name).Experiments.Lock_tables.local_us in
  check_bool "waiting-policy reconfig cheaper than scheduler reconfig" true
    (v "configure(waiting policy)" < v "configure(scheduler)");
  check_bool "monitor sample matches paper within 5%" true
    (Float.abs (v "monitor (one state variable)" -. 66.03) /. 66.03 < 0.05)

(* A miniature TSP spec so the whole Tables 1-3 pipeline stays fast. *)
let mini_spec =
  {
    Tsp.Parallel.default_spec with
    Tsp.Parallel.cities = 12;
    instance_seed = 4;
    searchers = 4;
    work_unit_ns = 15_000;
    trace_locks = true;
  }

let test_tsp_pipeline () =
  let t = Experiments.Tsp_experiments.run_all ~spec:mini_spec () in
  check_int "three tables" 3 (List.length t.Experiments.Tsp_experiments.tables);
  List.iter
    (fun (row : Experiments.Tsp_experiments.table) ->
      check_bool "blocking time positive" true (row.Experiments.Tsp_experiments.blocking_ms > 0.0);
      (* Tiny instances can be sub-linear (overhead-dominated) or
         super-linear (branch-and-bound anomalies); just require a
         plausible band. *)
      check_bool "speedup sane" true
        (row.Experiments.Tsp_experiments.speedup_blocking > 0.1
        && row.Experiments.Tsp_experiments.speedup_blocking
           <= 3.0 *. float_of_int mini_spec.Tsp.Parallel.searchers))
    t.Experiments.Tsp_experiments.tables;
  (* Every figure of Figures 4-9 must have a trace. *)
  List.iter
    (fun (number, impl, lock) ->
      match Experiments.Tsp_experiments.figure t ~impl ~lock with
      | Some series -> check_bool "trace nonempty" true (Engine.Series.length series >= 0)
      | None -> Alcotest.failf "figure %d has no trace" number)
    Experiments.Tsp_experiments.all_figures

let test_fig1_mini () =
  let base =
    {
      Workloads.Csweep.default with
      Workloads.Csweep.processors = 4;
      threads_per_proc = 2;
      iterations = 6;
    }
  in
  let curves = Experiments.Fig1.run ~base ~cs_lengths:[ 10_000; 50_000 ] () in
  check_int "five curves" 5 (List.length curves);
  let csv = Buffer.create 256 in
  let tmp = Filename.temp_file "fig1" ".csv" in
  let oc = open_out tmp in
  Experiments.Fig1.to_csv curves oc;
  close_out oc;
  let ic = open_in tmp in
  (try
     while true do
       Buffer.add_channel csv ic 1
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  let lines = String.split_on_char '\n' (Buffer.contents csv) in
  check_int "header + 2 data rows (+ trailing)" 4 (List.length lines)

let test_schedulers_shape () =
  let rows = Experiments.Ablations.schedulers () in
  check_int "three schedulers" 3 (List.length rows);
  let response kind =
    (List.find (fun (r : Experiments.Ablations.sched_row) -> r.Experiments.Ablations.sched = kind) rows)
      .Experiments.Ablations.mean_response_us
  in
  check_bool "priority responds fastest" true
    (response Locks.Lock_sched.Priority < response Locks.Lock_sched.Fcfs);
  check_bool "handoff also beats FCFS" true
    (response Locks.Lock_sched.Handoff < response Locks.Lock_sched.Fcfs)

let test_architecture_shape () =
  let rows = Experiments.Ablations.architecture () in
  check_int "4 locks x 2 archs" 8 (List.length rows);
  let get arch impl =
    List.find
      (fun (r : Experiments.Ablations.arch_row) ->
        r.Experiments.Ablations.arch = arch && r.Experiments.Ablations.lock_impl = impl)
      rows
  in
  (* Local spinning reduces interconnect traffic on NUMA. *)
  let numa_central = get "NUMA" "centralized spin" in
  let numa_local = get "NUMA" "local-spin (distributed)" in
  check_bool "local-spin reduces remote accesses" true
    (numa_local.Experiments.Ablations.remote_accesses
    < numa_central.Experiments.Ablations.remote_accesses);
  check_bool "local-spin lowers NUMA waits" true
    (numa_local.Experiments.Ablations.mean_wait_us
    < numa_central.Experiments.Ablations.mean_wait_us)

let test_sampling_monotone_samples () =
  let rows = Experiments.Ablations.sampling ~periods:[ 1; 4; 16 ] () in
  match rows with
  | [ a; b; c ] ->
    check_bool "higher period, fewer samples" true
      (a.Experiments.Ablations.samples > b.Experiments.Ablations.samples
      && b.Experiments.Ablations.samples > c.Experiments.Ablations.samples)
  | _ -> Alcotest.fail "expected three rows"

let test_advisory_shape () =
  let rows = Experiments.Ablations.advisory () in
  check_int "four locks" 4 (List.length rows);
  let time name =
    (List.find
       (fun (r : Experiments.Ablations.advisory_row) ->
         r.Experiments.Ablations.advisory_lock = name)
       rows)
      .Experiments.Ablations.total_ns
  in
  check_bool "advisory beats pure spin" true (time "advisory" < time "pure spin");
  check_bool "advisory at least matches pure blocking" true
    (time "advisory" <= time "pure blocking")

let test_threshold_grid_size () =
  let rows = Experiments.Ablations.threshold ~thresholds:[ 1; 6 ] ~ns:[ 4; 8 ] () in
  check_int "2x2 grid" 4 (List.length rows);
  (* Higher thresholds keep the lock spinning (fewer blocks). *)
  let blocks th =
    List.fold_left
      (fun acc (r : Experiments.Ablations.threshold_row) ->
        if r.Experiments.Ablations.waiting_threshold = th then
          acc + r.Experiments.Ablations.blocks
        else acc)
      0 rows
  in
  check_bool "threshold 6 blocks less than threshold 1" true (blocks 6 <= blocks 1)

let suite =
  [
    Alcotest.test_case "table4 shape" `Quick test_table4_shape;
    Alcotest.test_case "table4 calibration" `Quick test_table4_matches_paper_locally;
    Alcotest.test_case "table5 shape" `Quick test_table5_shape;
    Alcotest.test_case "table6 shape" `Quick test_table6_shape;
    Alcotest.test_case "table7 shape" `Quick test_table7_shape;
    Alcotest.test_case "table8 shape" `Quick test_table8_shape;
    Alcotest.test_case "tsp pipeline (mini)" `Slow test_tsp_pipeline;
    Alcotest.test_case "fig1 (mini)" `Slow test_fig1_mini;
    Alcotest.test_case "schedulers shape" `Slow test_schedulers_shape;
    Alcotest.test_case "architecture shape" `Slow test_architecture_shape;
    Alcotest.test_case "sampling monotone" `Slow test_sampling_monotone_samples;
    Alcotest.test_case "advisory shape" `Slow test_advisory_shape;
    Alcotest.test_case "threshold grid" `Slow test_threshold_grid_size;
  ]
