(* Unit tests of the lock building blocks: the waiting-policy
   attributes, the scheduler components, and the simple-adapt budget
   state machine. *)

open Butterfly

let cfg = { Config.default with Config.processors = 4 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Waiting-policy attribute table (paper section 5.1). *)

let test_waiting_describe () =
  let (_ : Sched.t) =
    run (fun () ->
        check_string "pure spin" "pure spin" (Locks.Waiting.describe (Locks.Waiting.pure_spin ()));
        check_string "backoff" "spin (back-off)"
          (Locks.Waiting.describe (Locks.Waiting.backoff_spin ()));
        check_string "pure sleep" "pure sleep"
          (Locks.Waiting.describe (Locks.Waiting.pure_sleep ()));
        check_string "combined" "mixed sleep/spin"
          (Locks.Waiting.describe (Locks.Waiting.combined ~spins:10 ()));
        check_string "conditional" "conditional sleep/spin"
          (Locks.Waiting.describe (Locks.Waiting.conditional ~timeout_ns:1_000 ())))
  in
  ()

let test_waiting_freeze () =
  let raised = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let w = Locks.Waiting.pure_spin () in
        Locks.Waiting.freeze w;
        try Adaptive_core.Attribute.set w.Locks.Waiting.spin_count 3
        with Adaptive_core.Attribute.Immutable_attribute _ -> raised := true)
  in
  check_bool "frozen attribute rejects set" true !raised

(* Lock scheduler components. *)

let w tid prio = { Locks.Lock_sched.tid; prio; enqueued_at = 0 }

let test_sched_fcfs () =
  let q = Locks.Lock_sched.create Locks.Lock_sched.Fcfs in
  Locks.Lock_sched.register q (w 1 5);
  Locks.Lock_sched.register q (w 2 9);
  Locks.Lock_sched.register q (w 3 1);
  check_int "waiting" 3 (Locks.Lock_sched.waiting q);
  let next () =
    match Locks.Lock_sched.release_next q ~successor:None with
    | Some x -> x.Locks.Lock_sched.tid
    | None -> -1
  in
  check_int "first in first out" 1 (next ());
  check_int "second" 2 (next ());
  check_int "third" 3 (next ());
  check_bool "empty" true (Locks.Lock_sched.is_empty q)

let test_sched_priority () =
  let q = Locks.Lock_sched.create Locks.Lock_sched.Priority in
  Locks.Lock_sched.register q (w 1 5);
  Locks.Lock_sched.register q (w 2 9);
  Locks.Lock_sched.register q (w 3 9);
  Locks.Lock_sched.register q (w 4 1);
  let next () =
    match Locks.Lock_sched.release_next q ~successor:None with
    | Some x -> x.Locks.Lock_sched.tid
    | None -> -1
  in
  check_int "highest priority" 2 (next ());
  check_int "fifo among equals" 3 (next ());
  check_int "then lower" 1 (next ());
  check_int "lowest last" 4 (next ())

let test_sched_handoff () =
  let q = Locks.Lock_sched.create Locks.Lock_sched.Handoff in
  Locks.Lock_sched.register q (w 1 0);
  Locks.Lock_sched.register q (w 2 0);
  Locks.Lock_sched.register q (w 3 0);
  let next successor =
    match Locks.Lock_sched.release_next q ~successor with
    | Some x -> x.Locks.Lock_sched.tid
    | None -> -1
  in
  check_int "successor honoured" 2 (next (Some 2));
  check_int "unregistered successor falls back to FCFS" 1 (next (Some 99));
  check_int "no successor = FCFS" 3 (next None)

let test_sched_cancel () =
  let q = Locks.Lock_sched.create Locks.Lock_sched.Fcfs in
  Locks.Lock_sched.register q (w 1 0);
  Locks.Lock_sched.register q (w 2 0);
  Locks.Lock_sched.cancel q 1;
  check_int "one left" 1 (Locks.Lock_sched.waiting q);
  (match Locks.Lock_sched.release_next q ~successor:None with
  | Some x -> check_int "survivor" 2 x.Locks.Lock_sched.tid
  | None -> Alcotest.fail "expected a waiter")

let test_sched_kind_change_keeps_queue () =
  let q = Locks.Lock_sched.create Locks.Lock_sched.Fcfs in
  Locks.Lock_sched.register q (w 1 1);
  Locks.Lock_sched.register q (w 2 9);
  Locks.Lock_sched.set_kind q Locks.Lock_sched.Priority;
  check_int "entries kept" 2 (Locks.Lock_sched.waiting q);
  (match Locks.Lock_sched.release_next q ~successor:None with
  | Some x -> check_int "now priority order" 2 x.Locks.Lock_sched.tid
  | None -> Alcotest.fail "expected a waiter")

(* Spin-budget state machine (simple-adapt). *)

let budget () = Locks.Spin_budget.create ~threshold:3 ~n:4 ~cap:16 ~init:4

let test_budget_zero_waiters_jumps_to_cap () =
  let b = budget () in
  check_bool "changed" true (Locks.Spin_budget.step b ~waiting:0 <> None);
  check_int "at cap" 16 (Locks.Spin_budget.spins b);
  check_string "pure spin" "pure spin" (Locks.Spin_budget.mode b)

let test_budget_low_contention_increases () =
  let b = budget () in
  check_bool "increase" true (Locks.Spin_budget.step b ~waiting:2 = Some 8);
  check_bool "again" true (Locks.Spin_budget.step b ~waiting:3 = Some 12);
  check_string "combined" "combined(12)" (Locks.Spin_budget.mode b)

let test_budget_high_contention_decreases_to_blocking () =
  let b = budget () in
  check_bool "minus 2n" true (Locks.Spin_budget.step b ~waiting:10 = Some 0);
  check_string "pure blocking" "pure blocking" (Locks.Spin_budget.mode b);
  check_bool "no further change" true (Locks.Spin_budget.step b ~waiting:10 = None)

let test_budget_saturates_at_cap () =
  let b = budget () in
  ignore (Locks.Spin_budget.step b ~waiting:0);
  check_bool "no change at cap under low contention" true
    (Locks.Spin_budget.step b ~waiting:1 = None)

let test_budget_apply_sets_attributes () =
  let (_ : Sched.t) =
    run (fun () ->
        let b = budget () in
        let w = Locks.Waiting.combined ~spins:4 () in
        ignore (Locks.Spin_budget.step b ~waiting:0);
        Locks.Spin_budget.apply b w;
        check_int "spin forever" max_int (Adaptive_core.Attribute.get w.Locks.Waiting.spin_count);
        check_bool "no sleep" false (Adaptive_core.Attribute.get w.Locks.Waiting.sleep);
        ignore (Locks.Spin_budget.step b ~waiting:10);
        ignore (Locks.Spin_budget.step b ~waiting:10);
        Locks.Spin_budget.apply b w;
        check_bool "sleep on" true (Adaptive_core.Attribute.get w.Locks.Waiting.sleep))
  in
  ()

let test_budget_validates () =
  check_bool "bad n rejected" true
    (try
       ignore (Locks.Spin_budget.create ~threshold:1 ~n:0 ~cap:4 ~init:0);
       false
     with Invalid_argument _ -> true)

(* Lock stats. *)

let test_stats_accounting () =
  let s = Locks.Lock_stats.create "x" in
  Locks.Lock_stats.on_lock s;
  Locks.Lock_stats.on_lock s;
  Locks.Lock_stats.on_contended s;
  Locks.Lock_stats.on_acquired s ~wait_ns:100;
  Locks.Lock_stats.on_acquired s ~wait_ns:300;
  check_int "locks" 2 (Locks.Lock_stats.lock_calls s);
  check_int "max wait" 300 (Locks.Lock_stats.max_wait_ns s);
  Alcotest.(check (float 0.01)) "contention ratio" 0.5 (Locks.Lock_stats.contention_ratio s);
  Alcotest.(check (float 0.01)) "mean wait over contended" 400.0
    (Locks.Lock_stats.mean_wait_ns s)

let test_stats_trace_disabled_by_default () =
  let s = Locks.Lock_stats.create "x" in
  check_bool "no trace" true (Locks.Lock_stats.trace s = None);
  (* Recording into a disabled trace is a no-op, not an error. *)
  Locks.Lock_stats.record_waiting s ~now:5 ~waiting:1

let suite =
  [
    Alcotest.test_case "waiting describe" `Quick test_waiting_describe;
    Alcotest.test_case "waiting freeze" `Quick test_waiting_freeze;
    Alcotest.test_case "sched FCFS" `Quick test_sched_fcfs;
    Alcotest.test_case "sched priority" `Quick test_sched_priority;
    Alcotest.test_case "sched handoff" `Quick test_sched_handoff;
    Alcotest.test_case "sched cancel" `Quick test_sched_cancel;
    Alcotest.test_case "sched kind change" `Quick test_sched_kind_change_keeps_queue;
    Alcotest.test_case "budget: zero waiters" `Quick test_budget_zero_waiters_jumps_to_cap;
    Alcotest.test_case "budget: low contention" `Quick test_budget_low_contention_increases;
    Alcotest.test_case "budget: high contention" `Quick
      test_budget_high_contention_decreases_to_blocking;
    Alcotest.test_case "budget: cap saturation" `Quick test_budget_saturates_at_cap;
    Alcotest.test_case "budget: apply" `Quick test_budget_apply_sets_attributes;
    Alcotest.test_case "budget: validation" `Quick test_budget_validates;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "stats trace off" `Quick test_stats_trace_disabled_by_default;
  ]
