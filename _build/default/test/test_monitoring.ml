(* Monitoring-library tests: ring buffer semantics, the monitor thread,
   and the loosely-coupled adaptive lock. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_ring_publish_consume () =
  let got = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let ring = Monitoring.Ring_buffer.create ~capacity:8 ~home:0 () in
        Monitoring.Ring_buffer.publish ring 1;
        Monitoring.Ring_buffer.publish ring 2;
        Monitoring.Ring_buffer.publish ring 3;
        let rec drain () =
          match Monitoring.Ring_buffer.consume ring with
          | Some v ->
            got := v :: !got;
            drain ()
          | None -> ()
        in
        drain ())
  in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] (List.rev !got)

let test_ring_empty_consume () =
  let empty = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let ring : int Monitoring.Ring_buffer.t =
          Monitoring.Ring_buffer.create ~home:0 ()
        in
        empty := Monitoring.Ring_buffer.consume ring = None)
  in
  check_bool "empty ring yields None" true !empty

let test_ring_overflow_drops_oldest () =
  let seen = ref [] and dropped = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let ring = Monitoring.Ring_buffer.create ~capacity:4 ~home:0 () in
        for i = 1 to 10 do
          Monitoring.Ring_buffer.publish ring i
        done;
        dropped := Monitoring.Ring_buffer.dropped ring;
        let rec drain () =
          match Monitoring.Ring_buffer.consume ring with
          | Some v ->
            seen := v :: !seen;
            drain ()
          | None -> ()
        in
        drain ())
  in
  check_bool "some records dropped" true (!dropped > 0);
  check_bool "the newest records survive" true (List.mem 10 !seen)

let test_ring_concurrent_producers () =
  let consumed = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let ring = Monitoring.Ring_buffer.create ~capacity:256 ~home:0 () in
        let producers =
          List.init 4 (fun p ->
              Cthread.fork ~proc:(p + 1) (fun () ->
                  for i = 1 to 20 do
                    Monitoring.Ring_buffer.publish ring ((p * 100) + i);
                    Cthread.work 3_000
                  done))
        in
        let consumer =
          Cthread.fork ~proc:5 (fun () ->
              while !consumed < 80 do
                match Monitoring.Ring_buffer.consume ring with
                | Some _ -> incr consumed
                | None -> Cthread.delay 5_000
              done)
        in
        Cthread.join_all producers;
        Cthread.join consumer)
  in
  check_int "all records arrive" 80 !consumed

let test_monitor_thread_delivers () =
  let delivered = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let ring = Monitoring.Ring_buffer.create ~home:0 () in
        let monitor =
          Monitoring.Monitor_thread.start ~proc:7 ~ring
            ~deliver:(fun v -> delivered := v :: !delivered)
            ()
        in
        for i = 1 to 5 do
          Monitoring.Ring_buffer.publish ring i;
          Cthread.work 30_000
        done;
        (* Give the monitor time to drain before stopping. *)
        Cthread.delay 500_000;
        Monitoring.Monitor_thread.stop monitor;
        Alcotest.(check int) "processed count" 5
          (Monitoring.Monitor_thread.processed monitor))
  in
  Alcotest.(check (list int)) "delivered in order" [ 1; 2; 3; 4; 5 ] (List.rev !delivered)

let test_monitor_thread_measures_lag () =
  let lag = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let ring = Monitoring.Ring_buffer.create ~home:0 () in
        let monitor =
          Monitoring.Monitor_thread.start_timestamped ~proc:7 ~poll_interval_ns:200_000
            ~ring ~deliver:(fun _ -> ()) ()
        in
        Monitoring.Ring_buffer.publish ring (Cthread.now (), 42);
        Cthread.delay 600_000;
        Monitoring.Monitor_thread.stop monitor;
        lag := Monitoring.Monitor_thread.max_lag_ns monitor)
  in
  check_bool "observation lag measured" true (!lag > 0)

let test_loose_adaptive_mutual_exclusion () =
  let counter = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Monitoring.Loose_adaptive_lock.create ~home:0 ~monitor_proc:7 () in
        let body () =
          for _ = 1 to 15 do
            Monitoring.Loose_adaptive_lock.lock lk;
            let v = !counter in
            Cthread.work 3_000;
            counter := v + 1;
            Monitoring.Loose_adaptive_lock.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts;
        Monitoring.Loose_adaptive_lock.shutdown lk)
  in
  check_int "no lost updates" 60 !counter

let test_loose_adaptive_adapts_with_lag () =
  let adaptations = ref 0 and lag = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Monitoring.Loose_adaptive_lock.create ~home:0 ~monitor_proc:7 () in
        (* Uncontended traffic: the policy should eventually configure
           pure spin — but only after the monitor thread sees the
           observations. *)
        for _ = 1 to 30 do
          Monitoring.Loose_adaptive_lock.lock lk;
          Cthread.work 2_000;
          Monitoring.Loose_adaptive_lock.unlock lk;
          Cthread.work 20_000
        done;
        Cthread.delay 1_000_000;
        Monitoring.Loose_adaptive_lock.shutdown lk;
        adaptations := Monitoring.Loose_adaptive_lock.adaptations lk;
        lag := Monitoring.Loose_adaptive_lock.max_lag_ns lk;
        Alcotest.(check string) "reached pure spin" "pure spin"
          (Monitoring.Loose_adaptive_lock.mode lk))
  in
  check_bool "adapted" true (!adaptations >= 1);
  check_bool "with measurable lag" true (!lag > 0)

let test_coupling_ablation_shape () =
  let rows = Experiments.Ablations.coupling () in
  check_int "two rows" 2 (List.length rows);
  let close = List.find (fun r -> r.Experiments.Ablations.coupling = "closely-coupled") rows in
  let loose = List.find (fun r -> r.Experiments.Ablations.coupling = "loosely-coupled") rows in
  check_bool "loose has lag, close none" true
    (loose.Experiments.Ablations.max_lag_us > 0.0
    && close.Experiments.Ablations.max_lag_us = 0.0)

let suite =
  [
    Alcotest.test_case "ring publish/consume" `Quick test_ring_publish_consume;
    Alcotest.test_case "ring empty" `Quick test_ring_empty_consume;
    Alcotest.test_case "ring overflow" `Quick test_ring_overflow_drops_oldest;
    Alcotest.test_case "ring concurrent producers" `Quick test_ring_concurrent_producers;
    Alcotest.test_case "monitor thread delivers" `Quick test_monitor_thread_delivers;
    Alcotest.test_case "monitor thread lag" `Quick test_monitor_thread_measures_lag;
    Alcotest.test_case "loose lock mutual exclusion" `Quick
      test_loose_adaptive_mutual_exclusion;
    Alcotest.test_case "loose lock adapts with lag" `Quick test_loose_adaptive_adapts_with_lag;
    Alcotest.test_case "coupling ablation shape" `Quick test_coupling_ablation_shape;
  ]
