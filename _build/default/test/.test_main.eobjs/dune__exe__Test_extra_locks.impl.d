test/test_extra_locks.ml: Alcotest Butterfly Condition Config Cthread Cthreads Engine List Locks Memory Queue Sched Spin
