test/test_sched.ml: Alcotest Buffer Butterfly Config Engine List Ops Printf Sched
