test/test_counters.ml: Alcotest Engine List
