test/test_sched_more.ml: Alcotest Array Butterfly Config Cthreads Engine List Ops Sched
