test/test_cthreads.ml: Alcotest Barrier Bool Butterfly Config Cthread Cthreads List Printf Sched Semaphore Spin
