test/test_tsp.ml: Alcotest List Locks Printf QCheck QCheck_alcotest String Tsp
