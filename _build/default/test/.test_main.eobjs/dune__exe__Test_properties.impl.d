test/test_properties.ml: Adaptive_core Alcotest Array Butterfly Config Cthreads Engine Float Gen List Locks Ops QCheck QCheck_alcotest Repro_stats Sched
