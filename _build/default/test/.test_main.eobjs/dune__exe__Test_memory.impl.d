test/test_memory.ml: Alcotest Array Butterfly Config List Memory QCheck QCheck_alcotest
