test/test_formal.ml: Adaptive_core Alcotest Butterfly Cthreads List Locks
