test/test_monitoring.ml: Alcotest Butterfly Config Cthread Cthreads Experiments List Monitoring Sched
