test/test_stats.ml: Alcotest Engine Repro_stats String
