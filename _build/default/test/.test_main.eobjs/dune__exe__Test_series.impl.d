test/test_series.ml: Alcotest Array Engine Filename List QCheck QCheck_alcotest Sys
