test/test_adaptive_core.ml: Adaptive_core Alcotest Butterfly Config Cthreads Engine Format List Ops Sched
