test/test_experiments.ml: Alcotest Buffer Engine Experiments Filename Float List Locks String Sys Tsp Workloads
