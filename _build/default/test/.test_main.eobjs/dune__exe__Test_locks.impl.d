test/test_locks.ml: Adaptive_core Alcotest Butterfly Config Cthread Cthreads Engine List Locks QCheck QCheck_alcotest Sched String
