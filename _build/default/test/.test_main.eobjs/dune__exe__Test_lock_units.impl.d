test/test_lock_units.ml: Adaptive_core Alcotest Butterfly Config Locks Sched
