test/test_rng.ml: Alcotest Array Engine List QCheck QCheck_alcotest
