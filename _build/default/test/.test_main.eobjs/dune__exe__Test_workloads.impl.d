test/test_workloads.ml: Alcotest List Locks Workloads
