test/test_pqueue.ml: Alcotest Engine List QCheck QCheck_alcotest
