test/test_additions.ml: Alcotest Butterfly Config Cthread Cthreads List Locks Monitoring Repro_stats Sched String
