(* Memory-model tests: allocation, value ops, latency/contention. *)

open Butterfly

let cfg = { Config.default with Config.processors = 4 }

let test_alloc_zeroed () =
  let mem = Memory.create cfg in
  let addrs = Memory.alloc mem ~node:1 8 in
  Alcotest.(check int) "eight words" 8 (Array.length addrs);
  Array.iter (fun a -> Alcotest.(check int) "zeroed" 0 (Memory.read mem a)) addrs;
  Array.iter (fun a -> Alcotest.(check int) "right node" 1 (Memory.node_of a)) addrs

let test_alloc_bad_node () =
  let mem = Memory.create cfg in
  Alcotest.(check bool) "bad node rejected" true
    (try
       ignore (Memory.alloc mem ~node:99 1);
       false
     with Invalid_argument _ -> true)

let test_alloc_growth () =
  let mem = Memory.create cfg in
  let addrs = Memory.alloc mem ~node:0 10_000 in
  Memory.write mem addrs.(9_999) 77;
  Alcotest.(check int) "big alloc usable" 77 (Memory.read mem addrs.(9_999));
  Alcotest.(check int) "used words" 10_000 (Memory.words_used mem ~node:0)

let test_value_ops () =
  let mem = Memory.create cfg in
  let a = Memory.alloc1 mem ~node:0 in
  Memory.write mem a 5;
  Alcotest.(check int) "faa returns prev" 5 (Memory.fetch_and_add mem a 3);
  Alcotest.(check int) "faa applied" 8 (Memory.read mem a);
  Alcotest.(check int) "swap returns prev" 8 (Memory.swap mem a 1);
  Alcotest.(check int) "swap applied" 1 (Memory.read mem a);
  Alcotest.(check int) "for returns prev" 1 (Memory.fetch_and_or mem a 6);
  Alcotest.(check int) "for applied" 7 (Memory.read mem a);
  Alcotest.(check bool) "cas hit" true (Memory.compare_and_swap mem a ~expected:7 ~desired:0);
  Alcotest.(check bool) "cas miss" false
    (Memory.compare_and_swap mem a ~expected:7 ~desired:9);
  Alcotest.(check int) "cas applied once" 0 (Memory.read mem a)

let test_unallocated_rejected () =
  let mem = Memory.create cfg in
  let a = Memory.alloc1 mem ~node:0 in
  ignore (Memory.read mem a);
  (* Forge a fresh memory with no allocations and reuse the address. *)
  let fresh = Memory.create cfg in
  Alcotest.(check bool) "unallocated read rejected" true
    (try
       ignore (Memory.read fresh a);
       false
     with Invalid_argument _ -> true)

let test_latency_matrix () =
  let mem = Memory.create cfg in
  let a = Memory.alloc1 mem ~node:2 in
  let lat from kind = Memory.latency cfg ~from_node:from a kind in
  Alcotest.(check int) "local read" cfg.Config.local_read_ns (lat 2 Memory.Read_access);
  Alcotest.(check int) "remote read" cfg.Config.remote_read_ns (lat 0 Memory.Read_access);
  Alcotest.(check int) "local write" cfg.Config.local_write_ns (lat 2 Memory.Write_access);
  Alcotest.(check int) "remote write" cfg.Config.remote_write_ns (lat 0 Memory.Write_access);
  Alcotest.(check bool) "atomic costs more than read" true
    (lat 2 Memory.Atomic_access > lat 2 Memory.Read_access)

let test_reserve_no_contention () =
  let mem = Memory.create { cfg with Config.contention = false } in
  let a = Memory.alloc1 mem ~node:0 in
  let t1 =
    Memory.reserve mem
      { cfg with Config.contention = false }
      ~from_node:0 a Memory.Read_access ~start:100
  in
  Alcotest.(check int) "start + latency" (100 + cfg.Config.local_read_ns) t1

let test_reserve_contention_serializes () =
  let mem = Memory.create cfg in
  let a = Memory.alloc1 mem ~node:0 in
  let t1 = Memory.reserve mem cfg ~from_node:1 a Memory.Read_access ~start:0 in
  let t2 = Memory.reserve mem cfg ~from_node:2 a Memory.Read_access ~start:0 in
  Alcotest.(check bool) "second access delayed" true (t2 > t1 - cfg.Config.remote_read_ns);
  Alcotest.(check bool) "module horizon advanced" true (Memory.busy_until mem ~node:0 > 0)

let test_remote_counter () =
  let mem = Memory.create cfg in
  let a = Memory.alloc1 mem ~node:0 in
  ignore (Memory.reserve mem cfg ~from_node:0 a Memory.Read_access ~start:0);
  ignore (Memory.reserve mem cfg ~from_node:3 a Memory.Read_access ~start:0);
  Alcotest.(check int) "one remote" 1 (Memory.remote_accesses mem);
  Alcotest.(check int) "two total" 2 (Memory.total_accesses mem)

let prop_faa_sums =
  QCheck.Test.make ~name:"fetch_and_add accumulates" ~count:200
    QCheck.(list (int_range (-100) 100))
    (fun deltas ->
      let mem = Memory.create cfg in
      let a = Memory.alloc1 mem ~node:0 in
      List.iter (fun d -> ignore (Memory.fetch_and_add mem a d)) deltas;
      Memory.read mem a = List.fold_left ( + ) 0 deltas)

let suite =
  [
    Alcotest.test_case "alloc zeroed" `Quick test_alloc_zeroed;
    Alcotest.test_case "alloc bad node" `Quick test_alloc_bad_node;
    Alcotest.test_case "alloc growth" `Quick test_alloc_growth;
    Alcotest.test_case "value ops" `Quick test_value_ops;
    Alcotest.test_case "unallocated rejected" `Quick test_unallocated_rejected;
    Alcotest.test_case "latency matrix" `Quick test_latency_matrix;
    Alcotest.test_case "reserve no contention" `Quick test_reserve_no_contention;
    Alcotest.test_case "reserve contention" `Quick test_reserve_contention_serializes;
    Alcotest.test_case "remote counter" `Quick test_remote_counter;
    QCheck_alcotest.to_alcotest prop_faa_sums;
  ]
