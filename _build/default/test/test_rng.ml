(* RNG tests: determinism, ranges, stream independence, distribution
   sanity. *)

let test_determinism () =
  let a = Engine.Rng.create 42 and b = Engine.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Engine.Rng.bits64 a) (Engine.Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Engine.Rng.create 1 and b = Engine.Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Engine.Rng.bits64 a <> Engine.Rng.bits64 b)

let test_copy_replays () =
  let a = Engine.Rng.create 7 in
  ignore (Engine.Rng.bits64 a);
  let b = Engine.Rng.copy a in
  Alcotest.(check int64) "copy replays" (Engine.Rng.bits64 a) (Engine.Rng.bits64 b)

let test_int_range () =
  let r = Engine.Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Engine.Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_int_in_range () =
  let r = Engine.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Engine.Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_int_rejects_bad_bound () =
  let r = Engine.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Engine.Rng.int r 0))

let test_float_range () =
  let r = Engine.Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Engine.Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_uniformity_rough () =
  (* chi-square-ish sanity: each of 10 buckets within 20% of expected. *)
  let r = Engine.Rng.create 17 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Engine.Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d suspicious: %d vs %d" i c expected)
    buckets

let test_split_independence () =
  let parent = Engine.Rng.create 21 in
  let child = Engine.Rng.split parent in
  (* Draw interleaved; child draws must not equal parent draws. *)
  let equal_draws = ref 0 in
  for _ = 1 to 100 do
    if Engine.Rng.bits64 parent = Engine.Rng.bits64 child then incr equal_draws
  done;
  Alcotest.(check int) "no identical interleaved draws" 0 !equal_draws

let test_exponential_positive_mean () =
  let r = Engine.Rng.create 23 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Engine.Rng.exponential r ~mean:100.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean within 10%" true (mean > 90.0 && mean < 110.0)

let test_permutation_is_permutation () =
  let r = Engine.Rng.create 27 in
  for n = 1 to 20 do
    let p = Engine.Rng.permutation r n in
    let seen = Array.make n false in
    Array.iter (fun v -> seen.(v) <- true) p;
    Array.iteri (fun i b -> if not b then Alcotest.failf "missing %d for n=%d" i n) seen
  done

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      let r = Engine.Rng.create seed in
      Engine.Rng.shuffle r arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int_in range" `Quick test_int_in_range;
    Alcotest.test_case "bad bound rejected" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "exponential mean" `Quick test_exponential_positive_mean;
    Alcotest.test_case "permutation valid" `Quick test_permutation_is_permutation;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
  ]
