(* Workload-generator tests: the Figure-1 sweep, client-server
   scheduler workload, and phased workloads behave as the paper's
   qualitative claims require. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small but contended configuration. *)
let small_sweep =
  {
    Workloads.Csweep.default with
    Workloads.Csweep.processors = 4;
    threads_per_proc = 3;
    iterations = 12;
  }

let test_csweep_runs () =
  let r = Workloads.Csweep.run small_sweep in
  check_bool "time positive" true (r.Workloads.Csweep.total_ns > 0);
  check_bool "saw contention" true (r.Workloads.Csweep.contended > 0)

let test_csweep_deterministic () =
  let a = Workloads.Csweep.run small_sweep and b = Workloads.Csweep.run small_sweep in
  check_int "same virtual time" a.Workloads.Csweep.total_ns b.Workloads.Csweep.total_ns

let test_csweep_time_grows_with_cs () =
  let short = Workloads.Csweep.run { small_sweep with Workloads.Csweep.cs_ns = 5_000 } in
  let long = Workloads.Csweep.run { small_sweep with Workloads.Csweep.cs_ns = 200_000 } in
  check_bool "longer sections, longer run" true
    (long.Workloads.Csweep.total_ns > short.Workloads.Csweep.total_ns)

let test_csweep_blocking_blocks_spin_spins () =
  let blocking =
    Workloads.Csweep.run { small_sweep with Workloads.Csweep.lock_kind = Locks.Lock.Blocking }
  in
  let spin =
    Workloads.Csweep.run { small_sweep with Workloads.Csweep.lock_kind = Locks.Lock.Spin }
  in
  check_bool "blocking lock blocks" true (blocking.Workloads.Csweep.blocks > 0);
  check_int "spin lock never blocks" 0 spin.Workloads.Csweep.blocks;
  check_bool "spin lock spins" true (spin.Workloads.Csweep.spin_probes > 0)

let test_csweep_blocking_wins_long_sections () =
  (* The heart of Figure 1: with several threads per processor and long
     critical sections, blocking beats pure spinning. *)
  let base = { small_sweep with Workloads.Csweep.cs_ns = 800_000; think_ns = 10_000 } in
  let spin = Workloads.Csweep.run { base with Workloads.Csweep.lock_kind = Locks.Lock.Spin } in
  let blocking =
    Workloads.Csweep.run { base with Workloads.Csweep.lock_kind = Locks.Lock.Blocking }
  in
  check_bool "blocking wins on long sections" true
    (blocking.Workloads.Csweep.total_ns < spin.Workloads.Csweep.total_ns)

let test_csweep_sweep_shape () =
  let curves =
    Workloads.Csweep.sweep ~base:small_sweep ~cs_lengths:[ 10_000; 50_000 ]
      ~kinds:[ Locks.Lock.Spin; Locks.Lock.Blocking ] ()
  in
  check_int "two kinds" 2 (List.length curves);
  List.iter (fun (_, curve) -> check_int "two points each" 2 (List.length curve)) curves

let small_cs = Workloads.Client_server.default

let test_client_server_serves_all () =
  let r = Workloads.Client_server.run small_cs in
  check_int "all requests served"
    (small_cs.Workloads.Client_server.clients
    * small_cs.Workloads.Client_server.requests_per_client)
    r.Workloads.Client_server.served

let test_client_server_priority_beats_fcfs () =
  let fcfs =
    Workloads.Client_server.run { small_cs with Workloads.Client_server.sched = Locks.Lock_sched.Fcfs }
  in
  let prio =
    Workloads.Client_server.run
      { small_cs with Workloads.Client_server.sched = Locks.Lock_sched.Priority }
  in
  check_bool "priority serves requests faster (MS93)" true
    (prio.Workloads.Client_server.mean_response_ns
    < fcfs.Workloads.Client_server.mean_response_ns)

let test_client_server_compare_runs_all () =
  let rows = Workloads.Client_server.compare_schedulers small_cs in
  check_int "three schedulers" 3 (List.length rows)

let test_phased_adaptive_reconfigures () =
  let r =
    Workloads.Phased.run
      { Workloads.Phased.default with Workloads.Phased.lock_kind = Locks.Lock.adaptive_default }
  in
  check_bool "adapted at least twice" true (r.Workloads.Phased.adaptations >= 2);
  check_bool "log populated" true (r.Workloads.Phased.adaptation_log <> [])

let test_phased_static_never_adapts () =
  let r =
    Workloads.Phased.run
      { Workloads.Phased.default with Workloads.Phased.lock_kind = Locks.Lock.Spin }
  in
  check_int "no adaptations" 0 r.Workloads.Phased.adaptations

let test_phased_adaptive_beats_worst_static () =
  let kinds = [ Locks.Lock.Spin; Locks.Lock.Blocking; Locks.Lock.adaptive_default ] in
  let results = Workloads.Phased.compare_kinds Workloads.Phased.default kinds in
  let time k = (List.assoc k results).Workloads.Phased.total_ns in
  let worst_static = max (time Locks.Lock.Spin) (time Locks.Lock.Blocking) in
  check_bool "adaptive beats the worst static policy" true
    (time Locks.Lock.adaptive_default < worst_static)

let suite =
  [
    Alcotest.test_case "csweep runs" `Quick test_csweep_runs;
    Alcotest.test_case "csweep deterministic" `Quick test_csweep_deterministic;
    Alcotest.test_case "csweep grows with cs" `Quick test_csweep_time_grows_with_cs;
    Alcotest.test_case "csweep lock behaviours" `Quick test_csweep_blocking_blocks_spin_spins;
    Alcotest.test_case "blocking wins long sections" `Quick
      test_csweep_blocking_wins_long_sections;
    Alcotest.test_case "sweep shape" `Quick test_csweep_sweep_shape;
    Alcotest.test_case "client-server serves all" `Quick test_client_server_serves_all;
    Alcotest.test_case "priority beats FCFS" `Quick test_client_server_priority_beats_fcfs;
    Alcotest.test_case "scheduler comparison" `Quick test_client_server_compare_runs_all;
    Alcotest.test_case "phased adaptive reconfigures" `Quick test_phased_adaptive_reconfigures;
    Alcotest.test_case "phased static stays" `Quick test_phased_static_never_adapts;
    Alcotest.test_case "adaptive beats worst static" `Quick
      test_phased_adaptive_beats_worst_static;
  ]
