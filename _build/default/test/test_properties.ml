(* Cross-cutting property tests: randomized simulated programs and
   invariants of the later utility modules. *)

open Butterfly

let check_bool = Alcotest.(check bool)

(* A random but well-formed simulated program: forks a few workers with
   random pinning, each performing a random mix of work, delays, memory
   traffic and lock use; everything must terminate with a monotone
   clock and intact mutual exclusion. *)
let random_program_runs (seed, nworkers, use_quantum) =
  let cfg =
    {
      Config.default with
      Config.processors = 5;
      seed;
      quantum_ns = (if use_quantum then Some 50_000 else None);
    }
  in
  let sim = Sched.create cfg in
  let violations = ref 0 and inside = ref 0 in
  Sched.run sim (fun () ->
      let rng_choice = Cthreads.Cthread.random in
      let lk = Locks.Lock.create ~home:0 (Locks.Lock.Combined 3) in
      let shared = Ops.alloc1 ~node:1 () in
      let worker i () =
        Cthreads.Cthread.work (1_000 * i);
        for _ = 1 to 10 do
          match rng_choice 5 with
          | 0 -> Cthreads.Cthread.work (1 + rng_choice 20_000)
          | 1 -> Cthreads.Cthread.delay (1 + rng_choice 20_000)
          | 2 -> ignore (Ops.fetch_and_add shared 1)
          | 3 -> Cthreads.Cthread.yield ()
          | _ ->
            Locks.Lock.lock lk;
            incr inside;
            if !inside > 1 then incr violations;
            Cthreads.Cthread.work (1 + rng_choice 10_000);
            decr inside;
            Locks.Lock.unlock lk
        done
      in
      let ts =
        List.init nworkers (fun i ->
            Cthreads.Cthread.fork ~proc:(1 + (i mod 4)) (worker i))
      in
      Cthreads.Cthread.join_all ts);
  !violations = 0 && Sched.final_time sim > 0

let prop_random_programs =
  QCheck.Test.make ~name:"random simulated programs run safely" ~count:25
    QCheck.(triple (int_bound 10_000) (int_range 2 6) bool)
    random_program_runs

let prop_random_programs_deterministic =
  QCheck.Test.make ~name:"random programs are deterministic" ~count:10
    QCheck.(pair (int_bound 10_000) (int_range 2 5))
    (fun (seed, nworkers) ->
      let once () =
        let cfg = { Config.default with Config.processors = 5; seed } in
        let sim = Sched.create cfg in
        Sched.run sim (fun () ->
            let lk = Locks.Lock.create ~home:0 Locks.Lock.adaptive_default in
            let worker i () =
              for _ = 1 to 8 do
                Locks.Lock.lock lk;
                Cthreads.Cthread.work (5_000 + (1_000 * i));
                Locks.Lock.unlock lk;
                Cthreads.Cthread.work 3_000
              done
            in
            let ts =
              List.init nworkers (fun i ->
                  Cthreads.Cthread.fork ~proc:(1 + (i mod 4)) (worker i))
            in
            Cthreads.Cthread.join_all ts);
        Sched.final_time sim
      in
      once () = once ())

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 1 5_000_000))
    (fun samples ->
      let h = Repro_stats.Histogram.create () in
      List.iter (Repro_stats.Histogram.add h) samples;
      let p q = Repro_stats.Histogram.percentile h q in
      p 25.0 <= p 50.0 && p 50.0 <= p 90.0 && p 90.0 <= p 99.9
      && p 99.9 <= Repro_stats.Histogram.max_seen h)

let prop_histogram_count_total =
  QCheck.Test.make ~name:"histogram count/total track inputs" ~count:100
    QCheck.(list (int_range 0 1_000_000))
    (fun samples ->
      let h = Repro_stats.Histogram.create () in
      List.iter (Repro_stats.Histogram.add h) samples;
      Repro_stats.Histogram.count h = List.length samples
      && Repro_stats.Histogram.total h = List.fold_left ( + ) 0 samples)

let prop_formal_valid_chains =
  (* Any contiguous chain over a fully-connected space validates. *)
  QCheck.Test.make ~name:"formal: contiguous chains validate" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (int_bound 2))
    (fun hops ->
      let module F = Adaptive_core.Formal in
      let configs = [| F.config "a"; F.config "b"; F.config "c" |] in
      let s = F.space ~configs:(Array.to_list configs) () in
      let _, transitions =
        List.fold_left
          (fun (current, acc) hop ->
            let next = configs.(hop) in
            ( next,
              {
                F.at = List.length acc;
                from_ = current;
                to_ = next;
                cost = Adaptive_core.Cost.zero;
              }
              :: acc ))
          (configs.(0), [])
          hops
      in
      F.validate s ~initial:configs.(0) (List.rev transitions) = Ok ())

let prop_series_resample_bounds =
  QCheck.Test.make ~name:"series resample stays within value bounds" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 2 100) (float_bound_inclusive 50.0)))
    (fun (buckets, values) ->
      let s = Engine.Series.create ~name:"s" () in
      List.iteri (fun i v -> Engine.Series.add s ~t:(i * 10) ~v) values;
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      Array.for_all
        (fun (_, v) -> v >= lo -. 1e-9 && v <= hi +. 1e-9)
        (Engine.Series.resample s ~buckets))

let test_mutex_under_quantum_stress () =
  (* Heavy mixed workload with an aggressive quantum: mutual exclusion
     must survive constant preemption. *)
  let cfg =
    { Config.default with Config.processors = 4; quantum_ns = Some 10_000; seed = 99 }
  in
  let sim = Sched.create cfg in
  let counter = ref 0 in
  Sched.run sim (fun () ->
      let lk = Locks.Lock.create ~home:0 Locks.Lock.adaptive_default in
      let worker () =
        for _ = 1 to 25 do
          Locks.Lock.lock lk;
          let v = !counter in
          Cthreads.Cthread.work 4_000;
          counter := v + 1;
          Locks.Lock.unlock lk
        done
      in
      let ts = List.init 8 (fun i -> Cthreads.Cthread.fork ~proc:(i mod 4) (worker)) in
      Cthreads.Cthread.join_all ts);
  Alcotest.(check int) "no lost updates under preemption" 200 !counter

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_programs;
    QCheck_alcotest.to_alcotest prop_random_programs_deterministic;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_histogram_count_total;
    QCheck_alcotest.to_alcotest prop_formal_valid_chains;
    QCheck_alcotest.to_alcotest prop_series_resample_bounds;
    Alcotest.test_case "mutex under preemption stress" `Quick test_mutex_under_quantum_stress;
  ]
