(* Thread-package tests: fork/join sugar, spin mutex, semaphore,
   barrier. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let test_fork_join_sugar () =
  let hits = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let ts = List.init 5 (fun i -> Cthread.fork ~proc:(i mod 4) (fun () -> incr hits)) in
        Cthread.join_all ts)
  in
  Alcotest.(check int) "all children ran" 5 !hits

let test_self_and_equal () =
  let ok = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let child = Cthread.fork (fun () -> ()) in
        let me = Cthread.self () in
        ok := (not (Cthread.equal child me)) && Cthread.equal me (Cthread.self ());
        Cthread.join child)
  in
  Alcotest.(check bool) "identity behaves" true !ok

let test_spin_mutual_exclusion () =
  (* Increment a host-side counter under a spin mutex from many threads;
     interleaved read-modify-write without the mutex would lose updates
     (each iteration spans several simulated ops). *)
  let shared = ref 0 in
  let iterations = 50 and nthreads = 6 in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let body () =
          for _ = 1 to iterations do
            Spin.lock mu;
            let v = !shared in
            Cthread.work 2_000;
            shared := v + 1;
            Spin.unlock mu
          done
        in
        let ts = List.init nthreads (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts)
  in
  Alcotest.(check int) "no lost updates" (iterations * nthreads) !shared

let test_spin_try_lock () =
  let first = ref false and second = ref true in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create () in
        first := Spin.try_lock mu;
        second := Spin.try_lock mu;
        Spin.unlock mu)
  in
  Alcotest.(check bool) "first try wins" true !first;
  Alcotest.(check bool) "second try fails" false !second

let test_semaphore_bounds_concurrency () =
  let permits = 2 in
  let inside = ref 0 and peak = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let sem = Semaphore.create ~node:0 permits in
        let body () =
          Semaphore.acquire sem;
          incr inside;
          if !inside > !peak then peak := !inside;
          Cthread.work 20_000;
          decr inside;
          Semaphore.release sem
        in
        let ts = List.init 6 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts)
  in
  Alcotest.(check bool) "bounded by permits" true (!peak <= permits);
  Alcotest.(check bool) "some concurrency happened" true (!peak >= 1)

let test_semaphore_try_acquire () =
  let got = ref (-1) in
  let (_ : Sched.t) =
    run (fun () ->
        let sem = Semaphore.create 1 in
        let a = Semaphore.try_acquire sem in
        let b = Semaphore.try_acquire sem in
        Semaphore.release sem;
        let c = Semaphore.try_acquire sem in
        got := Bool.to_int a + (2 * Bool.to_int b) + (4 * Bool.to_int c))
  in
  Alcotest.(check int) "try pattern a=yes b=no c=yes" 5 !got

let test_semaphore_fifo_handoff () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let sem = Semaphore.create ~node:0 0 in
        let waiter i =
          Cthread.fork ~proc:(i + 1) ~name:(Printf.sprintf "w%d" i) (fun () ->
              (* Stagger arrivals so the FIFO order is deterministic. *)
              Cthread.work (i * 50_000);
              Semaphore.acquire sem;
              order := i :: !order)
        in
        let ts = List.init 3 waiter in
        Cthread.work 500_000;
        Semaphore.release sem;
        Cthread.work 50_000;
        Semaphore.release sem;
        Cthread.work 50_000;
        Semaphore.release sem;
        Cthread.join_all ts)
  in
  Alcotest.(check (list int)) "released in arrival order" [ 0; 1; 2 ] (List.rev !order)

let test_barrier_synchronizes () =
  let parties = 4 in
  let before = ref 0 and anomalies = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let b = Barrier.create ~node:0 parties in
        let body i () =
          Cthread.work (10_000 * (i + 1));
          incr before;
          Barrier.await b;
          (* After the barrier every party must observe all arrivals. *)
          if !before <> parties then incr anomalies
        in
        let ts = List.init parties (fun i -> Cthread.fork ~proc:(i + 1) (body i)) in
        Cthread.join_all ts)
  in
  Alcotest.(check int) "no thread passed early" 0 !anomalies

let test_barrier_reusable () =
  let parties = 3 and cycles = 4 in
  let log = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let b = Barrier.create ~node:0 parties in
        let body i () =
          for c = 1 to cycles do
            Cthread.work (5_000 * (i + 1));
            Barrier.await b;
            if i = 0 then log := c :: !log
          done
        in
        let ts = List.init parties (fun i -> Cthread.fork ~proc:(i + 1) (body i)) in
        Cthread.join_all ts)
  in
  Alcotest.(check (list int)) "all cycles completed" [ 1; 2; 3; 4 ] (List.rev !log)

let test_priority_roundtrip () =
  let p = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let t = Cthread.fork ~prio:2 (fun () -> Cthread.work 100) in
        Cthread.set_priority t 5;
        p := Cthread.priority t;
        Cthread.join t)
  in
  Alcotest.(check int) "priority readable" 5 !p

let suite =
  [
    Alcotest.test_case "fork/join sugar" `Quick test_fork_join_sugar;
    Alcotest.test_case "self/equal" `Quick test_self_and_equal;
    Alcotest.test_case "spin mutual exclusion" `Quick test_spin_mutual_exclusion;
    Alcotest.test_case "spin try_lock" `Quick test_spin_try_lock;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore_bounds_concurrency;
    Alcotest.test_case "semaphore try_acquire" `Quick test_semaphore_try_acquire;
    Alcotest.test_case "semaphore fifo" `Quick test_semaphore_fifo_handoff;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "priority roundtrip" `Quick test_priority_roundtrip;
  ]
