(* Time-series tests. *)

let make samples =
  let s = Engine.Series.create ~name:"s" () in
  List.iter (fun (t, v) -> Engine.Series.add s ~t ~v) samples;
  s

let test_empty () =
  let s = make [] in
  Alcotest.(check int) "length" 0 (Engine.Series.length s);
  Alcotest.(check bool) "no last" true (Engine.Series.last s = None);
  Alcotest.(check bool) "no mean" true (Engine.Series.mean_value s = None)

let test_append_and_get () =
  let s = make [ (0, 1.0); (5, 2.0); (9, 4.0) ] in
  Alcotest.(check int) "length" 3 (Engine.Series.length s);
  Alcotest.(check bool) "get 1" true (Engine.Series.get s 1 = (5, 2.0));
  Alcotest.(check bool) "last" true (Engine.Series.last s = Some (9, 4.0))

let test_monotonic_enforced () =
  let s = make [ (10, 1.0) ] in
  Alcotest.check_raises "decreasing time rejected"
    (Invalid_argument "Series.add: timestamps must be non-decreasing") (fun () ->
      Engine.Series.add s ~t:5 ~v:0.0)

let test_equal_times_allowed () =
  let s = make [ (3, 1.0); (3, 2.0) ] in
  Alcotest.(check int) "both kept" 2 (Engine.Series.length s)

let test_min_max_mean () =
  let s = make [ (0, 3.0); (1, 1.0); (2, 8.0) ] in
  Alcotest.(check bool) "max" true (Engine.Series.max_value s = Some 8.0);
  Alcotest.(check bool) "min" true (Engine.Series.min_value s = Some 1.0);
  Alcotest.(check bool) "mean" true (Engine.Series.mean_value s = Some 4.0)

let test_time_weighted_mean () =
  (* value 0 for 10 units then 10 for 10 units: weighted mean of the
     step function over [0,20] using left values = (0*10 + 10*10)/20 = 5.
     Samples: (0,0) (10,10) (20,10). *)
  let s = make [ (0, 0.0); (10, 10.0); (20, 10.0) ] in
  match Engine.Series.time_weighted_mean s with
  | Some m -> Alcotest.(check (float 0.001)) "weighted" 5.0 m
  | None -> Alcotest.fail "expected a mean"

let test_resample_reduces () =
  let s = make (List.init 100 (fun i -> (i * 10, float_of_int (i mod 5)))) in
  let r = Engine.Series.resample s ~buckets:10 in
  Alcotest.(check int) "bucket count" 10 (Array.length r);
  Array.iter (fun (_, v) -> if v < 0.0 || v > 4.0 then Alcotest.fail "out of range") r

let test_resample_empty () =
  let s = make [] in
  Alcotest.(check int) "empty stays empty" 0
    (Array.length (Engine.Series.resample s ~buckets:5))

let test_csv_output () =
  let a = make [ (0, 1.0); (10, 2.0) ] in
  let b =
    let s = Engine.Series.create ~name:"b" () in
    Engine.Series.add s ~t:5 ~v:9.0;
    s
  in
  let file = Filename.temp_file "series" ".csv" in
  let oc = open_out file in
  Engine.Series.output_csv oc [ a; b ];
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let lines = List.rev !lines in
  match lines with
  | header :: rows ->
    Alcotest.(check string) "header" "time,s,b" header;
    Alcotest.(check int) "one row per distinct time" 3 (List.length rows)
  | [] -> Alcotest.fail "no output"

let prop_fold_sums_all =
  QCheck.Test.make ~name:"series fold visits every sample" ~count:200
    QCheck.(list (pair (int_bound 1000) (float_bound_inclusive 100.0)))
    (fun samples ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
      let s = make sorted in
      let n = Engine.Series.fold s ~init:0 ~f:(fun acc _ _ -> acc + 1) in
      n = List.length sorted)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "append/get" `Quick test_append_and_get;
    Alcotest.test_case "monotonic enforced" `Quick test_monotonic_enforced;
    Alcotest.test_case "equal times" `Quick test_equal_times_allowed;
    Alcotest.test_case "min/max/mean" `Quick test_min_max_mean;
    Alcotest.test_case "time-weighted mean" `Quick test_time_weighted_mean;
    Alcotest.test_case "resample" `Quick test_resample_reduces;
    Alcotest.test_case "resample empty" `Quick test_resample_empty;
    Alcotest.test_case "csv output" `Quick test_csv_output;
    QCheck_alcotest.to_alcotest prop_fold_sums_all;
  ]
