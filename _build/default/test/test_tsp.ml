(* TSP tests: instance generation, LMSK correctness (against brute
   force), and the parallel solvers (optimality, determinism, lock
   accounting). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small spec so each simulation stays fast. *)
let small_spec =
  {
    Tsp.Parallel.default_spec with
    Tsp.Parallel.cities = 12;
    instance_seed = 4;
    searchers = 4;
    work_unit_ns = 15_000;
  }

let test_instance_deterministic () =
  let a = Tsp.Instance.generate ~seed:5 10 and b = Tsp.Instance.generate ~seed:5 10 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j then
        check_int "same costs" (Tsp.Instance.cost a i j) (Tsp.Instance.cost b i j)
    done
  done

let test_instance_seed_matters () =
  let a = Tsp.Instance.generate ~seed:5 10 and b = Tsp.Instance.generate ~seed:6 10 in
  let differs = ref false in
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j && Tsp.Instance.cost a i j <> Tsp.Instance.cost b i j then differs := true
    done
  done;
  check_bool "different seeds differ" true !differs

let test_instance_rejects_tiny () =
  check_bool "n=2 rejected" true
    (try
       ignore (Tsp.Instance.generate ~seed:1 2);
       false
     with Invalid_argument _ -> true)

let test_euclidean_symmetric () =
  let t = Tsp.Instance.generate_euclidean ~seed:3 12 in
  for i = 0 to 11 do
    for j = 0 to 11 do
      if i <> j then
        check_int "symmetric" (Tsp.Instance.cost t i j) (Tsp.Instance.cost t j i)
    done
  done

let test_tour_cost () =
  let m = [| [| 0; 1; 9 |]; [| 9; 0; 2 |]; [| 3; 9; 0 |] |] in
  let t = Tsp.Instance.of_matrix m in
  check_int "0-1-2-0 tour" (1 + 2 + 3) (Tsp.Instance.tour_cost t [ 0; 1; 2 ]);
  check_int "0-2-1-0 tour" (9 + 9 + 9) (Tsp.Instance.tour_cost t [ 0; 2; 1 ])

let test_tour_cost_validates () =
  let t = Tsp.Instance.generate ~seed:1 5 in
  check_bool "wrong length rejected" true
    (try
       ignore (Tsp.Instance.tour_cost t [ 0; 1 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate rejected" true
    (try
       ignore (Tsp.Instance.tour_cost t [ 0; 1; 1; 2; 3 ]);
       false
     with Invalid_argument _ -> true)

let test_nearest_neighbour_valid () =
  let t = Tsp.Instance.generate ~seed:9 15 in
  let tour, cost = Tsp.Instance.nearest_neighbour t in
  check_int "visits all" 15 (List.length tour);
  check_int "cost consistent" cost (Tsp.Instance.tour_cost t tour)

let test_lmsk_matches_brute_force () =
  for seed = 1 to 12 do
    let inst = Tsp.Instance.generate ~seed 8 in
    let (tour, cost), _ = Tsp.Lmsk.solve_sequential inst in
    check_int (Printf.sprintf "optimal for seed %d" seed) (Tsp.Lmsk.brute_force inst) cost;
    check_int "tour cost consistent" cost (Tsp.Instance.tour_cost inst tour)
  done

let test_lmsk_euclidean_matches_brute_force () =
  for seed = 1 to 6 do
    let inst = Tsp.Instance.generate_euclidean ~seed 8 in
    let (_, cost), _ = Tsp.Lmsk.solve_sequential inst in
    check_int (Printf.sprintf "optimal for euclid seed %d" seed)
      (Tsp.Lmsk.brute_force inst) cost
  done

let test_lmsk_initial_bound_respected () =
  let inst = Tsp.Instance.generate ~seed:3 10 in
  let (_, cost), n_plain = Tsp.Lmsk.solve_sequential inst in
  let greedy = Tsp.Instance.nearest_neighbour inst in
  let (_, cost'), n_primed = Tsp.Lmsk.solve_sequential ~initial:greedy inst in
  check_int "same optimum" cost cost';
  check_bool "priming never expands more" true (n_primed <= n_plain)

let test_lmsk_root_bound_is_lower_bound () =
  for seed = 1 to 10 do
    let inst = Tsp.Instance.generate ~seed 9 in
    let root = Tsp.Lmsk.root inst in
    let opt = Tsp.Lmsk.brute_force inst in
    check_bool "root bound <= optimum" true (Tsp.Lmsk.bound root <= opt)
  done

let test_lmsk_children_bounds_monotonic () =
  let inst = Tsp.Instance.generate ~seed:7 12 in
  let rec walk node depth =
    if depth < 4 then
      match (Tsp.Lmsk.expand inst node).Tsp.Lmsk.outcome with
      | Tsp.Lmsk.Tour _ -> ()
      | Tsp.Lmsk.Children children ->
        List.iter
          (fun c ->
            check_bool "child bound >= parent bound" true
              (Tsp.Lmsk.bound c >= Tsp.Lmsk.bound node);
            walk c (depth + 1))
          children
  in
  walk (Tsp.Lmsk.root inst) 0

let test_lmsk_work_positive () =
  let inst = Tsp.Instance.generate ~seed:2 10 in
  let e = Tsp.Lmsk.expand inst (Tsp.Lmsk.root inst) in
  check_bool "work units positive" true (e.Tsp.Lmsk.work > 0)

let run_and_optimum spec impl =
  let _, (opt, _) = Tsp.Parallel.run_sequential spec in
  (Tsp.Parallel.run impl spec, opt)

let test_parallel_finds_optimum impl () =
  let r, opt = run_and_optimum small_spec impl in
  check_int
    (Printf.sprintf "%s finds the optimum" (Tsp.Parallel.impl_name impl))
    opt r.Tsp.Parallel.tour_cost

let test_parallel_adaptive_finds_optimum () =
  let spec = { small_spec with Tsp.Parallel.lock_kind = Tsp.Parallel.tsp_adaptive_kind } in
  let r, opt = run_and_optimum spec Tsp.Parallel.Centralized in
  check_int "adaptive centralized optimum" opt r.Tsp.Parallel.tour_cost;
  check_bool "some adaptations happened" true (r.Tsp.Parallel.adaptations >= 0)

let test_parallel_deterministic () =
  let run () = (Tsp.Parallel.run Tsp.Parallel.Distributed small_spec).Tsp.Parallel.total_ns in
  check_int "same virtual time across runs" (run ()) (run ())

let test_parallel_lock_reports_present () =
  let r = Tsp.Parallel.run Tsp.Parallel.Centralized small_spec in
  let names = List.map fst r.Tsp.Parallel.lock_reports in
  check_bool "qlock reported" true (List.mem "qlock" names);
  check_bool "glob-act-lock reported" true (List.mem "glob-act-lock" names);
  check_bool "glob-low-lock reported" true (List.mem "glob-low-lock" names);
  check_bool "globlock reported" true (List.mem "globlock" names)

let test_parallel_distributed_has_per_proc_queues () =
  let r = Tsp.Parallel.run Tsp.Parallel.Distributed small_spec in
  let qlocks =
    List.filter
      (fun (n, _) -> String.length n >= 6 && String.sub n 0 6 = "qlock.")
      r.Tsp.Parallel.lock_reports
  in
  check_int "one queue lock per searcher" small_spec.Tsp.Parallel.searchers
    (List.length qlocks)

let test_parallel_trace_enabled () =
  let r =
    Tsp.Parallel.run Tsp.Parallel.Centralized
      { small_spec with Tsp.Parallel.trace_locks = true }
  in
  let qlock = List.assoc "qlock" r.Tsp.Parallel.lock_reports in
  check_bool "trace recorded" true (Locks.Lock_stats.trace qlock <> None)

let test_sequential_virtual_time_scales () =
  let t1, _ = Tsp.Parallel.run_sequential small_spec in
  let t2, _ =
    Tsp.Parallel.run_sequential { small_spec with Tsp.Parallel.work_unit_ns = 30_000 }
  in
  check_bool "doubling unit cost increases time" true (t2 > t1)

let test_useless_expansions_counted () =
  let r = Tsp.Parallel.run Tsp.Parallel.Distributed small_spec in
  check_bool "useless <= expanded" true
    (r.Tsp.Parallel.useless_expansions <= r.Tsp.Parallel.nodes_expanded)

let prop_lmsk_optimal =
  QCheck.Test.make ~name:"lmsk finds brute-force optimum" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 5 8))
    (fun (seed, n) ->
      let inst = Tsp.Instance.generate ~seed n in
      let (_, cost), _ = Tsp.Lmsk.solve_sequential inst in
      cost = Tsp.Lmsk.brute_force inst)

let suite =
  [
    Alcotest.test_case "instance deterministic" `Quick test_instance_deterministic;
    Alcotest.test_case "instance seeds differ" `Quick test_instance_seed_matters;
    Alcotest.test_case "tiny instance rejected" `Quick test_instance_rejects_tiny;
    Alcotest.test_case "euclidean symmetric" `Quick test_euclidean_symmetric;
    Alcotest.test_case "tour cost" `Quick test_tour_cost;
    Alcotest.test_case "tour cost validates" `Quick test_tour_cost_validates;
    Alcotest.test_case "nearest neighbour valid" `Quick test_nearest_neighbour_valid;
    Alcotest.test_case "lmsk = brute force (uniform)" `Quick test_lmsk_matches_brute_force;
    Alcotest.test_case "lmsk = brute force (euclid)" `Quick
      test_lmsk_euclidean_matches_brute_force;
    Alcotest.test_case "initial bound respected" `Quick test_lmsk_initial_bound_respected;
    Alcotest.test_case "root bound lower-bounds" `Quick test_lmsk_root_bound_is_lower_bound;
    Alcotest.test_case "child bounds monotonic" `Quick test_lmsk_children_bounds_monotonic;
    Alcotest.test_case "work positive" `Quick test_lmsk_work_positive;
    Alcotest.test_case "centralized optimum" `Quick
      (test_parallel_finds_optimum Tsp.Parallel.Centralized);
    Alcotest.test_case "distributed optimum" `Quick
      (test_parallel_finds_optimum Tsp.Parallel.Distributed);
    Alcotest.test_case "balanced optimum" `Quick
      (test_parallel_finds_optimum Tsp.Parallel.Balanced);
    Alcotest.test_case "adaptive optimum" `Quick test_parallel_adaptive_finds_optimum;
    Alcotest.test_case "parallel deterministic" `Quick test_parallel_deterministic;
    Alcotest.test_case "lock reports present" `Quick test_parallel_lock_reports_present;
    Alcotest.test_case "per-proc queues" `Quick test_parallel_distributed_has_per_proc_queues;
    Alcotest.test_case "trace enabled" `Quick test_parallel_trace_enabled;
    Alcotest.test_case "virtual time scales" `Quick test_sequential_virtual_time_scales;
    Alcotest.test_case "useless counted" `Quick test_useless_expansions_counted;
    QCheck_alcotest.to_alcotest prop_lmsk_optimal;
  ]
