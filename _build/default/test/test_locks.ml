(* Lock-family tests: mutual exclusion for every kind, waiting-policy
   semantics, schedulers, advisory words, reconfiguration, and the
   simple-adapt feedback behaviour. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

(* Exercise mutual exclusion: [nthreads] threads each enter the
   critical section [iters] times around a host counter; interleaving
   would lose updates because the critical section spans simulated
   time. Returns (final counter, max overlap observed). *)
let hammer ?(nthreads = 6) ?(iters = 20) ?(cs_ns = 5_000) kind =
  let counter = ref 0 and inside = ref 0 and overlap = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 kind in
        let body () =
          for _ = 1 to iters do
            Locks.Lock.lock lk;
            incr inside;
            if !inside > !overlap then overlap := !inside;
            let v = !counter in
            Cthread.work cs_ns;
            counter := v + 1;
            decr inside;
            Locks.Lock.unlock lk
          done
        in
        let ts = List.init nthreads (fun i -> Cthread.fork ~proc:(1 + (i mod 7)) body) in
        Cthread.join_all ts)
  in
  (!counter, !overlap)

let check_mutex name kind () =
  let total, overlap = hammer kind in
  Alcotest.(check int) (name ^ ": no lost updates") (6 * 20) total;
  Alcotest.(check int) (name ^ ": never two inside") 1 overlap

let test_uncontended_fast_path () =
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Spin in
        for _ = 1 to 5 do
          Locks.Lock.lock lk;
          Locks.Lock.unlock lk
        done;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int) "five locks" 5 (Locks.Lock_stats.lock_calls s);
    Alcotest.(check int) "none contended" 0 (Locks.Lock_stats.contended s)

let test_with_lock_releases_on_exception () =
  let reacquired = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Spin in
        (try Locks.Lock.with_lock lk (fun () -> failwith "inside") with Failure _ -> ());
        reacquired := Locks.Lock.try_lock lk;
        Locks.Lock.unlock lk)
  in
  Alcotest.(check bool) "released after raise" true !reacquired

let test_blocking_lock_blocks () =
  (* With a blocking lock, a waiter must use the sleeping path. *)
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Blocking in
        let worker () =
          Locks.Lock.lock lk;
          Cthread.work 100_000;
          Locks.Lock.unlock lk
        in
        let a = Cthread.fork ~proc:1 worker and b = Cthread.fork ~proc:2 worker in
        Cthread.join a;
        Cthread.join b;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int) "one waiter blocked" 1 (Locks.Lock_stats.blocks s);
    Alcotest.(check int) "one handoff" 1 (Locks.Lock_stats.handoffs s);
    Alcotest.(check int) "no spin probes" 0 (Locks.Lock_stats.spin_probes s)

let test_spin_lock_never_blocks () =
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Spin in
        let worker () =
          Locks.Lock.lock lk;
          Cthread.work 500_000;
          Locks.Lock.unlock lk
        in
        let ts = List.init 3 (fun i -> Cthread.fork ~proc:(i + 1) worker) in
        Cthread.join_all ts;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int) "no blocks" 0 (Locks.Lock_stats.blocks s);
    Alcotest.(check bool) "spun instead" true (Locks.Lock_stats.spin_probes s > 0)

let test_combined_spills_to_block () =
  (* combined(2): a waiter facing a long critical section probes twice
     then sleeps. *)
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 (Locks.Lock.Combined 2) in
        let holder =
          Cthread.fork ~proc:1 (fun () ->
              Locks.Lock.lock lk;
              Cthread.work 2_000_000;
              Locks.Lock.unlock lk)
        in
        Cthread.work 100_000;
        let waiter =
          Cthread.fork ~proc:2 (fun () ->
              Locks.Lock.lock lk;
              Locks.Lock.unlock lk)
        in
        Cthread.join holder;
        Cthread.join waiter;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int) "slept after the spin phase" 1 (Locks.Lock_stats.blocks s);
    Alcotest.(check bool) "probed first" true (Locks.Lock_stats.spin_probes s >= 2)

let test_conditional_times_out_to_block () =
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 (Locks.Lock.Conditional 50_000) in
        let holder =
          Cthread.fork ~proc:1 (fun () ->
              Locks.Lock.lock lk;
              Cthread.work 3_000_000;
              Locks.Lock.unlock lk)
        in
        Cthread.work 100_000;
        let waiter =
          Cthread.fork ~proc:2 (fun () ->
              Locks.Lock.lock lk;
              Locks.Lock.unlock lk)
        in
        Cthread.join holder;
        Cthread.join waiter;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s -> Alcotest.(check int) "timed out into sleep" 1 (Locks.Lock_stats.blocks s)

let test_advisory_sleep_advice () =
  let stats = ref None in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Advisory in
        let holder =
          Cthread.fork ~proc:1 (fun () ->
              Locks.Lock.lock lk;
              (* Owner knows the section is long: advise sleeping. *)
              Locks.Lock.advise lk (Some Locks.Lock_core.Advise_sleep);
              Cthread.work 2_000_000;
              Locks.Lock.advise lk None;
              Locks.Lock.unlock lk)
        in
        Cthread.work 200_000;
        let waiter =
          Cthread.fork ~proc:2 (fun () ->
              Locks.Lock.lock lk;
              Locks.Lock.unlock lk)
        in
        Cthread.join holder;
        Cthread.join waiter;
        stats := Some (Locks.Lock.stats lk))
  in
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int) "waiter slept immediately" 1 (Locks.Lock_stats.blocks s);
    Alcotest.(check int) "no probes burned" 0 (Locks.Lock_stats.spin_probes s)

let test_fcfs_order () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 ~sched:Locks.Lock_sched.Fcfs Locks.Lock.Blocking in
        Locks.Lock.lock lk;
        let waiter i =
          Cthread.fork ~proc:(i + 1) (fun () ->
              Cthread.work (i * 100_000);
              (* stagger arrivals *)
              Locks.Lock.lock lk;
              order := i :: !order;
              Locks.Lock.unlock lk)
        in
        let ts = List.init 3 waiter in
        Cthread.work 1_000_000;
        Locks.Lock.unlock lk;
        Cthread.join_all ts)
  in
  Alcotest.(check (list int)) "arrival order served" [ 0; 1; 2 ] (List.rev !order)

let test_priority_order () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let lk =
          Locks.Lock.create ~home:0 ~sched:Locks.Lock_sched.Priority Locks.Lock.Blocking
        in
        Locks.Lock.lock lk;
        let waiter i prio =
          Cthread.fork ~proc:(i + 1) ~prio (fun () ->
              Cthread.work (i * 100_000);
              Locks.Lock.lock lk;
              order := i :: !order;
              Locks.Lock.unlock lk)
        in
        (* Arrival order 0,1,2 with priorities 1,3,2. *)
        let ts = [ waiter 0 1; waiter 1 3; waiter 2 2 ] in
        Cthread.work 1_000_000;
        Locks.Lock.unlock lk;
        Cthread.join_all ts)
  in
  Alcotest.(check (list int)) "highest priority first" [ 1; 2; 0 ] (List.rev !order)

let test_handoff_successor () =
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let lk =
          Locks.Lock.create ~home:0 ~sched:Locks.Lock_sched.Handoff Locks.Lock.Blocking
        in
        Locks.Lock.lock lk;
        let waiter i =
          Cthread.fork ~proc:(i + 1) (fun () ->
              Cthread.work (i * 100_000);
              Locks.Lock.lock lk;
              order := i :: !order;
              Locks.Lock.unlock lk)
        in
        let ts = List.init 3 waiter in
        Cthread.work 1_000_000;
        (* Owner designates the last arrival as successor. *)
        Locks.Lock.set_successor lk (List.nth ts 2);
        Locks.Lock.unlock lk;
        Cthread.join_all ts)
  in
  match List.rev !order with
  | 2 :: _ -> ()
  | other ->
    Alcotest.failf "expected successor first, got %s"
      (String.concat "," (List.map string_of_int other))

let test_reconfigurable_waiting_change () =
  let before = ref "" and after = ref "" in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Reconfigurable_lock.create ~home:0 () in
        before := Locks.Reconfigurable_lock.describe lk;
        Locks.Reconfigurable_lock.configure_waiting lk ~spin_count:max_int ~sleep:false ();
        after := Locks.Reconfigurable_lock.describe lk)
  in
  Alcotest.(check string) "starts mixed" "mixed sleep/spin / FCFS scheduler" !before;
  Alcotest.(check string) "becomes pure spin" "pure spin / FCFS scheduler" !after

let test_reconfigurable_scheduler_change_cost () =
  let dt_wait = ref 0 and dt_sched = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Reconfigurable_lock.create ~home:0 () in
        let t0 = Cthread.now () in
        Locks.Reconfigurable_lock.configure_waiting lk ~spin_count:3 ();
        let t1 = Cthread.now () in
        Locks.Reconfigurable_lock.configure_scheduler lk Locks.Lock_sched.Priority;
        let t2 = Cthread.now () in
        dt_wait := t1 - t0;
        dt_sched := t2 - t1)
  in
  Alcotest.(check bool) "scheduler reconfig costs more than waiting reconfig" true
    (!dt_sched > !dt_wait);
  (* Both should be in the microsecond regime of Table 8 (about 10-13us). *)
  Alcotest.(check bool) "waiting reconfig ~10us" true (!dt_wait > 5_000 && !dt_wait < 20_000);
  Alcotest.(check bool) "sched reconfig ~12us" true (!dt_sched > 8_000 && !dt_sched < 25_000)

let test_static_lock_frozen () =
  let raised = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 Locks.Lock.Spin in
        let core = Locks.Lock.core lk in
        let p = Locks.Lock_core.policy core in
        try Adaptive_core.Attribute.set p.Locks.Waiting.spin_count 1
        with Adaptive_core.Attribute.Immutable_attribute _ -> raised := true)
  in
  Alcotest.(check bool) "static attributes frozen" true !raised

let test_adaptive_no_contention_becomes_spin () =
  let mode = ref "" and adaptations = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Adaptive_lock.create ~home:0 () in
        (* Uncontended traffic: the monitor always reads 0 waiters. *)
        for _ = 1 to 20 do
          Locks.Adaptive_lock.lock lk;
          Cthread.work 1_000;
          Locks.Adaptive_lock.unlock lk
        done;
        mode := Locks.Adaptive_lock.mode lk;
        adaptations := Locks.Adaptive_lock.adaptations lk)
  in
  Alcotest.(check string) "configured to pure spin" "pure spin" !mode;
  Alcotest.(check int) "one transition" 1 !adaptations

let test_adaptive_contention_becomes_blocking () =
  (* Under sustained contention simple-adapt must drive the lock into
     the pure-blocking configuration at some point; when the run drains
     it may legitimately adapt back toward spinning, so inspect the
     adaptation log rather than the final mode. *)
  let visited_blocking = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let params =
          { Locks.Adaptive_lock.default_params with Locks.Adaptive_lock.waiting_threshold = 1 }
        in
        let lk = Locks.Adaptive_lock.create ~home:0 ~params () in
        let body () =
          for _ = 1 to 8 do
            Locks.Adaptive_lock.lock lk;
            Cthread.work 300_000;
            Locks.Adaptive_lock.unlock lk
          done
        in
        let ts = List.init 6 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts;
        let log = Adaptive_core.Adaptive.log (Locks.Adaptive_lock.feedback lk) in
        visited_blocking := List.exists (fun (_, label) -> label = "pure blocking") log)
  in
  Alcotest.(check bool) "visited pure blocking" true !visited_blocking

let test_adaptive_mutual_exclusion () =
  check_mutex "adaptive" Locks.Lock.adaptive_default ()

let test_adaptive_custom_policy_used () =
  let hits = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let policy _obs =
          incr hits;
          Adaptive_core.Policy.No_change
        in
        let lk = Locks.Adaptive_lock.create ~home:0 ~policy () in
        for _ = 1 to 10 do
          Locks.Adaptive_lock.lock lk;
          Locks.Adaptive_lock.unlock lk
        done)
  in
  (* period 2 -> five samples, each running the custom policy. *)
  Alcotest.(check int) "custom policy consulted" 5 !hits

let test_trace_records_pattern () =
  let points = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = Locks.Lock.create ~home:0 ~trace:true Locks.Lock.Blocking in
        let body () =
          for _ = 1 to 5 do
            Locks.Lock.lock lk;
            Cthread.work 50_000;
            Locks.Lock.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(i + 1) body) in
        Cthread.join_all ts;
        match Locks.Lock_stats.trace (Locks.Lock.stats lk) with
        | Some series -> points := Engine.Series.length series
        | None -> ())
  in
  Alcotest.(check bool) "pattern points recorded" true (!points > 0)

let test_lock_cost_ordering_table4 () =
  (* Uncontended lock-op latency must order: atomior-style spin <
     blocking (Table 4) and unlock: spin < adaptive < blocking
     (Table 5). *)
  let measure kind =
    let dt_lock = ref 0 and dt_unlock = ref 0 in
    let (_ : Sched.t) =
      run (fun () ->
          let lk = Locks.Lock.create ~home:0 kind in
          let t0 = Cthread.now () in
          Locks.Lock.lock lk;
          let t1 = Cthread.now () in
          Locks.Lock.unlock lk;
          let t2 = Cthread.now () in
          dt_lock := t1 - t0;
          dt_unlock := t2 - t1)
    in
    (!dt_lock, !dt_unlock)
  in
  let spin_l, spin_u = measure Locks.Lock.Spin in
  let block_l, block_u = measure Locks.Lock.Blocking in
  let adapt_l, adapt_u = measure Locks.Lock.adaptive_default in
  Alcotest.(check bool) "lock: spin < blocking" true (spin_l < block_l);
  Alcotest.(check bool) "lock: adaptive ~ spin" true (abs (adapt_l - spin_l) < 3_000);
  Alcotest.(check bool) "unlock: spin < adaptive" true (spin_u < adapt_u);
  Alcotest.(check bool) "unlock: adaptive < blocking" true (adapt_u < block_u)

let prop_mutual_exclusion_random_kinds =
  QCheck.Test.make ~name:"mutual exclusion holds for random configs" ~count:12
    QCheck.(
      pair (int_bound 4)
        (pair (int_bound 3 (* threads-1 *)) (int_bound 3 (* cs scale *))))
    (fun (kind_idx, (extra_threads, cs_scale)) ->
      let kind =
        match kind_idx with
        | 0 -> Locks.Lock.Spin
        | 1 -> Locks.Lock.Backoff
        | 2 -> Locks.Lock.Blocking
        | 3 -> Locks.Lock.Combined 3
        | _ -> Locks.Lock.adaptive_default
      in
      let nthreads = 2 + extra_threads in
      let total, overlap =
        hammer ~nthreads ~iters:8 ~cs_ns:(1_000 * (1 + cs_scale)) kind
      in
      total = nthreads * 8 && overlap = 1)

let suite =
  [
    Alcotest.test_case "mutex: spin" `Quick (check_mutex "spin" Locks.Lock.Spin);
    Alcotest.test_case "mutex: backoff" `Quick (check_mutex "backoff" Locks.Lock.Backoff);
    Alcotest.test_case "mutex: blocking" `Quick (check_mutex "blocking" Locks.Lock.Blocking);
    Alcotest.test_case "mutex: combined" `Quick
      (check_mutex "combined" (Locks.Lock.Combined 5));
    Alcotest.test_case "mutex: reconfigurable" `Quick
      (check_mutex "reconfigurable" Locks.Lock.Reconfigurable);
    Alcotest.test_case "mutex: adaptive" `Quick test_adaptive_mutual_exclusion;
    Alcotest.test_case "uncontended fast path" `Quick test_uncontended_fast_path;
    Alcotest.test_case "with_lock releases on raise" `Quick
      test_with_lock_releases_on_exception;
    Alcotest.test_case "blocking lock blocks" `Quick test_blocking_lock_blocks;
    Alcotest.test_case "spin lock never blocks" `Quick test_spin_lock_never_blocks;
    Alcotest.test_case "combined spills to block" `Quick test_combined_spills_to_block;
    Alcotest.test_case "conditional timeout" `Quick test_conditional_times_out_to_block;
    Alcotest.test_case "advisory sleep advice" `Quick test_advisory_sleep_advice;
    Alcotest.test_case "FCFS order" `Quick test_fcfs_order;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "handoff successor" `Quick test_handoff_successor;
    Alcotest.test_case "reconfigure waiting" `Quick test_reconfigurable_waiting_change;
    Alcotest.test_case "reconfigure costs (Table 8)" `Quick
      test_reconfigurable_scheduler_change_cost;
    Alcotest.test_case "static locks frozen" `Quick test_static_lock_frozen;
    Alcotest.test_case "adaptive: no contention -> spin" `Quick
      test_adaptive_no_contention_becomes_spin;
    Alcotest.test_case "adaptive: contention -> blocking" `Quick
      test_adaptive_contention_becomes_blocking;
    Alcotest.test_case "adaptive: custom policy" `Quick test_adaptive_custom_policy_used;
    Alcotest.test_case "trace records pattern" `Quick test_trace_records_pattern;
    Alcotest.test_case "cost ordering (Tables 4/5)" `Quick test_lock_cost_ordering_table4;
    QCheck_alcotest.to_alcotest prop_mutual_exclusion_random_kinds;
  ]
