(* Table/plot rendering tests. *)

let check_bool = Alcotest.(check bool)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let test_table_arity_checked () =
  let t = Repro_stats.Table.create ~headers:[ "a"; "b" ] in
  check_bool "arity mismatch rejected" true
    (try
       Repro_stats.Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_table_alignment () =
  let t = Repro_stats.Table.create ~headers:[ "op"; "us" ] in
  Repro_stats.Table.add_row t [ "x"; "1.00" ];
  Repro_stats.Table.add_row t [ "longer-name"; "123.45" ];
  let s = Repro_stats.Table.render t in
  (* Numeric cells right-aligned: "  1.00" has leading spaces. *)
  check_bool "right-aligned numerics" true (contains s "|   1.00 |")

let test_formatters () =
  Alcotest.(check string) "us" "12.35" (Repro_stats.Table.us 12_345.0);
  Alcotest.(check string) "ms" "12.3" (Repro_stats.Table.ms_of_ns 12_345_678);
  Alcotest.(check string) "pct" "42.0%" (Repro_stats.Table.pct 42.0)

let test_plot_lines () =
  let s =
    Repro_stats.Plot.lines
      [ ("a", [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]); ("b", [ (0.0, 4.0); (2.0, 0.0) ]) ]
  in
  check_bool "non-empty canvas" true (String.length s > 100);
  check_bool "legend lists both" true (contains s "* = a" && contains s "o = b")

let test_plot_empty () =
  Alcotest.(check string) "empty input, empty plot" "" (Repro_stats.Plot.lines [])

let test_plot_series () =
  let series = Engine.Series.create ~name:"waiting" () in
  for i = 0 to 99 do
    Engine.Series.add series ~t:(i * 1_000_000) ~v:(float_of_int (i mod 7))
  done;
  let s = Repro_stats.Plot.series series in
  check_bool "series plot renders" true (String.length s > 100);
  check_bool "named" true (contains s "waiting")

let suite =
  [
    Alcotest.test_case "table arity" `Quick test_table_arity_checked;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "formatters" `Quick test_formatters;
    Alcotest.test_case "plot lines" `Quick test_plot_lines;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot series" `Quick test_plot_series;
  ]
