(* Fault injection and recovery: virtual-time timers, fault plans and
   the injector, kill/stall/degrade semantics, timed locks, backoff
   retries, adaptation guardrails, the watchdog, structured run
   outcomes, and the chaos harness's determinism. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 4 }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* -- fault plans ------------------------------------------------- *)

let test_plan_roundtrip () =
  let spec =
    "kill@250000:tid=4;mem-degrade@40000:node=3,factor=8,until=900000;\
     proc-stall@60000:proc=1,ns=50000;mem-stuck@70000:node=0,until=99000;\
     holder-delay@80000:lock=*,ns=12000"
  in
  let plan = Faults.Fault_plan.of_string spec in
  check_int "five faults" 5 (List.length plan);
  (* of_string sorts by time; to_string/of_string is a fixpoint *)
  let printed = Faults.Fault_plan.to_string plan in
  check_bool "sorted: degrade first"
    true
    (String.length printed > 11 && String.sub printed 0 11 = "mem-degrade");
  check_string "round trip" printed
    (Faults.Fault_plan.to_string (Faults.Fault_plan.of_string printed));
  check_string "empty plan" "" (Faults.Fault_plan.to_string []);
  check_int "empty string parses to empty plan" 0
    (List.length (Faults.Fault_plan.of_string "  "));
  Alcotest.check_raises "unknown kind" (Failure "Fault_plan.of_string: unknown fault kind \"zap\"")
    (fun () -> ignore (Faults.Fault_plan.of_string "zap@10:tid=1"));
  check_bool "missing argument rejected" true
    (match Faults.Fault_plan.of_string "kill@10:pid=1" with
    | _ -> false
    | exception Failure _ -> true)

let test_plan_generate_deterministic () =
  let g seed = Faults.Fault_plan.generate ~seed ~cfg ~horizon_ns:3_000_000 () in
  check_string "same seed, same plan"
    (Faults.Fault_plan.to_string (g 42))
    (Faults.Fault_plan.to_string (g 42));
  check_bool "different seeds diverge" true
    (Faults.Fault_plan.to_string (g 1) <> Faults.Fault_plan.to_string (g 2));
  List.iter
    (fun { Faults.Fault_plan.at_ns; _ } ->
      check_bool "fault times inside the horizon" true
        (at_ns >= 300_000 && at_ns <= 3_000_000))
    (g 7)

(* -- scheduler timers -------------------------------------------- *)

let test_timers_fire_in_time_then_insertion_order () =
  let sim = Sched.create cfg in
  let order = ref [] in
  let fire tag = order := tag :: !order in
  Sched.add_timer sim ~at:50_000 (fun () -> fire "late");
  Sched.add_timer sim ~at:10_000 (fun () -> fire "early-a");
  Sched.add_timer sim ~at:10_000 (fun () -> fire "early-b");
  check_int "three pending" 3 (Sched.pending_timers sim);
  Sched.run sim (fun () -> Ops.work 100_000);
  check_int "none pending" 0 (Sched.pending_timers sim);
  Alcotest.(check (list string))
    "time order, then insertion order"
    [ "early-a"; "early-b"; "late" ]
    (List.rev !order)

let test_unreached_timers_are_discarded () =
  (* A fault scheduled beyond the run must not perturb the final
     clocks: the run ends when the workload ends. *)
  let final_of timers =
    let sim = Sched.create cfg in
    if timers then Sched.add_timer sim ~at:50_000_000 (fun () -> ());
    Sched.run sim (fun () -> Ops.work 10_000);
    Sched.final_time sim
  in
  check_int "same final time" (final_of false) (final_of true)

(* -- fault primitives -------------------------------------------- *)

let test_kill_thread_wakes_joiner_and_strands_lock () =
  let sim = Sched.create cfg in
  let joined = ref false and still_held = ref None in
  Sched.add_timer sim ~at:1_000_000 (fun () ->
      check_bool "kill applied" true (Sched.kill_thread sim ~tid:1 ~at:1_000_000));
  Sched.run sim (fun () ->
      let lk = Locks.Lock.create ~home:0 Locks.Lock.Spin in
      let victim =
        Cthread.fork ~proc:1 (fun () ->
            Locks.Lock.lock lk;
            Cthread.work 50_000_000;
            (* never reached: killed mid-section *)
            Locks.Lock.unlock lk)
      in
      Cthread.join victim;
      joined := true;
      still_held := Some (not (Locks.Lock.try_lock lk)));
  check_bool "joiner woken by the kill" true !joined;
  check_bool "lock stranded held" (Some true = !still_held) true;
  check_int "kill counted" 1 (Engine.Counters.get (Sched.counters sim) "sched.kills");
  check_bool "second kill is a no-op" false (Sched.kill_thread sim ~tid:1 ~at:2_000_000)

let test_stall_and_penalty_slow_the_run () =
  let final ~stall ~penalty =
    let sim = Sched.create cfg in
    if stall then Sched.add_timer sim ~at:10_000 (fun () ->
        Sched.stall_processor sim ~proc:1 ~ns:2_000_000);
    if penalty then Sched.add_timer sim ~at:10_000 (fun () ->
        check_bool "penalty accepted" true (Sched.penalize_thread sim ~tid:1 ~ns:3_000_000));
    Sched.run sim (fun () ->
        let t = Cthread.fork ~proc:1 (fun () -> Cthread.work 500_000) in
        Cthread.join t);
    Sched.final_time sim
  in
  let base = final ~stall:false ~penalty:false in
  check_bool "processor stall delays completion" true (final ~stall:true ~penalty:false > base);
  check_bool "thread penalty delays completion" true (final ~stall:false ~penalty:true > base)

let test_memory_degradation () =
  let final degrade =
    let sim = Sched.create cfg in
    if degrade then Sched.add_timer sim ~at:0 (fun () ->
        Memory.set_degrade_factor (Sched.memory sim) ~node:0 8);
    Sched.run sim (fun () ->
        let w = Ops.alloc1 ~node:0 () in
        let t =
          Cthread.fork ~proc:2 (fun () ->
              for _ = 1 to 50 do
                ignore (Ops.read w)
              done)
        in
        Cthread.join t);
    Sched.final_time sim
  in
  check_bool "degraded module slows the reader" true (final true > final false);
  let sim = Sched.create cfg in
  check_int "factor readable" 1 (Memory.degrade_factor (Sched.memory sim) ~node:2);
  Alcotest.check_raises "factor < 1 rejected"
    (Invalid_argument "Memory.set_degrade_factor: factor must be >= 1") (fun () ->
      Memory.set_degrade_factor (Sched.memory sim) ~node:0 0)

(* -- the injector ------------------------------------------------ *)

let run_fig_workload sim =
  Sched.run sim (fun () ->
      let lk = Locks.Lock.create ~home:0 (Locks.Lock.Combined 8) in
      let ts =
        List.init 3 (fun i ->
            Cthread.fork ~proc:(i + 1) (fun () ->
                for _ = 1 to 5 do
                  Locks.Lock.lock lk;
                  Cthread.work 3_000;
                  Locks.Lock.unlock lk;
                  Cthread.work 2_000
                done))
      in
      Cthread.join_all ts)

let test_empty_plan_is_invisible () =
  let fingerprint inject =
    let sim = Sched.create cfg in
    let inj = if inject then Some (Faults.Injector.install sim ~plan:[]) else None in
    run_fig_workload sim;
    (match inj with
    | Some inj -> check_int "nothing applied" 0 (List.length (Faults.Injector.applied inj))
    | None -> ());
    ( Sched.final_time sim,
      Engine.Counters.get (Sched.counters sim) "sched.events",
      Sched.thread_report sim )
  in
  check_bool "empty plan: bit-for-bit the unperturbed run" true
    (fingerprint false = fingerprint true)

let test_injector_applies_and_logs () =
  let sim = Sched.create cfg in
  let plan =
    Faults.Fault_plan.of_string
      "mem-degrade@20000:node=0,factor=4,until=400000;holder-delay@0:lock=*,ns=700000"
  in
  let inj = Faults.Injector.install sim ~plan in
  run_fig_workload sim;
  let log = Faults.Injector.applied inj in
  check_bool "degrade logged" true
    (List.exists (fun l -> contains l "mem-degrade node=0 factor=4") log);
  check_bool "degrade restored" true
    (List.exists (fun l -> contains l "mem-degrade node=0 restored") log);
  check_bool "holder delayed exactly once" true
    (1 = List.length (List.filter (fun l -> contains l "holder-delay") log));
  check_bool "holder delay stretches the run" true (Sched.final_time sim > 700_000)

let test_injected_run_is_deterministic () =
  let fingerprint () =
    let sim = Sched.create cfg in
    let plan =
      Faults.Fault_plan.generate ~seed:11 ~cfg ~horizon_ns:200_000 ()
    in
    let inj = Faults.Injector.install sim ~plan in
    run_fig_workload sim;
    (Sched.final_time sim, Faults.Injector.applied inj)
  in
  check_bool "same plan, same perturbed run" true (fingerprint () = fingerprint ())

(* -- backoff ------------------------------------------------------ *)

let test_backoff_gaps () =
  let b = Engine.Backoff.create ~base_ns:1_000 ~cap_ns:16_000 ~jitter_pct:0 ~seed:5 () in
  check_int "attempt 0" 1_000 (Engine.Backoff.gap_ns b ~attempt:0);
  check_int "attempt 3" 8_000 (Engine.Backoff.gap_ns b ~attempt:3);
  check_int "capped" 16_000 (Engine.Backoff.gap_ns b ~attempt:10);
  check_int "overflow-safe" 16_000 (Engine.Backoff.gap_ns b ~attempt:63);
  let j = Engine.Backoff.create ~base_ns:1_000 ~cap_ns:16_000 ~jitter_pct:25 ~seed:5 () in
  for attempt = 0 to 8 do
    let g = Engine.Backoff.gap_ns j ~attempt in
    let nominal = min 16_000 (1_000 * (1 lsl attempt)) in
    check_bool "jitter stays within +/-25%" true
      (g >= (nominal * 75 / 100) && g <= (nominal * 125 / 100))
  done

let test_backoff_retry () =
  let b = Engine.Backoff.create ~seed:9 () in
  let slept = ref [] and calls = ref 0 in
  let ok =
    Engine.Backoff.retry b ~max_attempts:5
      ~sleep:(fun ns -> slept := ns :: !slept)
      (fun () ->
        incr calls;
        !calls = 3)
  in
  check_bool "succeeds on third attempt" true ok;
  check_int "called three times" 3 !calls;
  check_int "slept between failures only" 2 (List.length !slept);
  let exhausted =
    Engine.Backoff.retry b ~max_attempts:3 ~sleep:(fun _ -> ()) (fun () -> false)
  in
  check_bool "gives up after max attempts" false exhausted

(* -- timed locks --------------------------------------------------- *)

let test_lock_timeout () =
  let holder_blocked = ref None and acquired_after = ref None and stats = ref None in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      let lk =
        Locks.Lock_core.create ~home:0 ~policy:(Locks.Waiting.pure_spin ~node:0 ())
          ~costs:Locks.Lock_costs.spin ()
      in
      check_bool "uncontended timed acquire" true
        (Locks.Lock_core.lock_timeout lk ~deadline_ns:(Ops.now () + 1_000));
      let waiter =
        Cthread.fork ~proc:1 (fun () ->
            holder_blocked :=
              Some (Locks.Lock_core.lock_timeout lk ~deadline_ns:(Ops.now () + 30_000)))
      in
      Cthread.work 300_000;
      Locks.Lock_core.unlock lk;
      Cthread.join waiter;
      let late =
        Cthread.fork ~proc:2 (fun () ->
            acquired_after :=
              Some (Locks.Lock_core.lock_timeout lk ~deadline_ns:(Ops.now () + 50_000));
            Locks.Lock_core.unlock lk)
      in
      Cthread.join late;
      stats := Some (Locks.Lock_core.stats lk));
  check_bool "contended waiter timed out" (Some false = !holder_blocked) true;
  check_bool "acquired once free" (Some true = !acquired_after) true;
  match !stats with
  | None -> Alcotest.fail "no stats"
  | Some s -> check_int "one timeout recorded" 1 (Locks.Lock_stats.timeouts s)

let test_lock_retrying_recovers () =
  (* The holder releases after 150k ns; a 30k-slice retrying waiter
     times out a few times, backs off, and must eventually win. *)
  let got = ref None in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      let lk = Locks.Reconfigurable_lock.create ~home:0 () in
      Locks.Reconfigurable_lock.lock lk;
      let waiter =
        Cthread.fork ~proc:1 (fun () ->
            let backoff = Engine.Backoff.create ~base_ns:5_000 ~seed:3 () in
            got :=
              Some
                (Locks.Reconfigurable_lock.lock_retrying lk ~backoff ~max_attempts:20
                   ~slice_ns:30_000);
            if !got = Some true then Locks.Reconfigurable_lock.unlock lk)
      in
      Cthread.work 150_000;
      Locks.Reconfigurable_lock.unlock lk;
      Cthread.join waiter;
      check_bool "timeouts happened before success" true
        (Locks.Lock_stats.timeouts (Locks.Reconfigurable_lock.stats lk) >= 1));
  check_bool "retrying waiter recovered the lock" (Some true = !got) true

(* -- guardrails ---------------------------------------------------- *)

let test_guardrail_clamp_and_fallback () =
  let params =
    { Locks.Guardrail.clamp_max = 10; pathological_limit = 3; cooldown = 2 }
  in
  let g = Locks.Guardrail.create ~params () in
  (match Locks.Guardrail.observe g ~waiting:50 ~wedged_low:false with
  | Locks.Guardrail.Sample v -> check_int "absurd sample clamped" 10 v
  | Locks.Guardrail.Fallback -> Alcotest.fail "fallback too early");
  check_int "streak counted" 1 (Locks.Guardrail.streak g);
  (match Locks.Guardrail.observe g ~waiting:3 ~wedged_low:true with
  | Locks.Guardrail.Sample v -> check_int "wedged sample passes clamped" 3 v
  | Locks.Guardrail.Fallback -> Alcotest.fail "fallback too early");
  (match Locks.Guardrail.observe g ~waiting:99 ~wedged_low:false with
  | Locks.Guardrail.Fallback -> ()
  | Locks.Guardrail.Sample _ -> Alcotest.fail "third pathological sample must fall back");
  check_int "one fallback" 1 (Locks.Guardrail.fallbacks g);
  (* cooldown: the next two pathological samples do not count *)
  (match Locks.Guardrail.observe g ~waiting:99 ~wedged_low:true with
  | Locks.Guardrail.Sample _ -> ()
  | Locks.Guardrail.Fallback -> Alcotest.fail "cooldown must suppress fallback");
  check_int "cooldown leaves streak at zero" 0 (Locks.Guardrail.streak g);
  (* a healthy sample resets the streak *)
  ignore (Locks.Guardrail.observe g ~waiting:99 ~wedged_low:false);
  ignore (Locks.Guardrail.observe g ~waiting:2 ~wedged_low:false);
  check_int "healthy sample resets" 0 (Locks.Guardrail.streak g);
  (* the fallback target: Spin_budget.reset returns to the initial
     (default combined) budget *)
  let b = Locks.Spin_budget.create ~threshold:2 ~n:4 ~cap:16 ~init:4 in
  ignore (Locks.Spin_budget.step b ~waiting:10);
  check_int "stepped to the blocking extreme" 0 (Locks.Spin_budget.spins b);
  Locks.Spin_budget.reset b;
  check_int "reset restores the initial budget" 4 (Locks.Spin_budget.spins b)

let test_adaptive_lock_guardrail_fallback () =
  (* waiting_threshold 0 with contention drives simple-adapt's budget
     to the pure-blocking extreme and keeps it there; the guardrail
     must detect the wedge and reset to the default combined
     configuration, charged as a reconfiguration. *)
  let fallbacks = ref 0 and spins = ref (-1) and reconfs = ref 0 in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      let params =
        { Locks.Adaptive_lock.waiting_threshold = 0; n = 2; spin_cap = 4; sample_period = 1 }
      in
      let guardrail =
        { Locks.Guardrail.clamp_max = 64; pathological_limit = 2; cooldown = 1000 }
      in
      let lk = Locks.Adaptive_lock.create ~params ~guardrail ~home:0 () in
      let ts =
        List.init 3 (fun i ->
            Cthread.fork ~proc:(i + 1) (fun () ->
                for _ = 1 to 12 do
                  Locks.Adaptive_lock.lock lk;
                  Cthread.work 4_000;
                  Locks.Adaptive_lock.unlock lk
                done))
      in
      Cthread.join_all ts;
      (match Locks.Adaptive_lock.guardrail lk with
      | None -> Alcotest.fail "guardrail not installed"
      | Some g -> fallbacks := Locks.Guardrail.fallbacks g);
      spins := Locks.Adaptive_lock.spins_now lk;
      reconfs := Locks.Lock_stats.reconfigurations (Locks.Adaptive_lock.stats lk));
  check_bool "guardrail fell back" true (!fallbacks >= 1);
  (* benign samples after the fallback may legitimately move the budget
     again; only its range is invariant here *)
  check_bool "budget within range" true (!spins >= 0 && !spins <= 4);
  check_bool "fallback charged as reconfiguration" true (!reconfs >= 1)

(* -- watchdog ------------------------------------------------------ *)

let test_watchdog_turns_stall_into_structured_abort () =
  let sim = Sched.create cfg in
  let wd = ref None in
  let outcome =
    Sched.run_outcome sim (fun () ->
        wd := Some (Monitoring.Watchdog.start ~poll_interval_ns:20_000 ~stale_limit:3
                      ~sched:sim ());
        let stuck = Cthread.fork ~proc:1 (fun () -> Cthread.block ()) in
        Cthread.join stuck)
  in
  (match outcome with
  | Sched.Aborted { reason = Sched.Stop_requested msg; diagnostics } ->
    check_bool "watchdog named in reason" true (contains msg "watchdog");
    check_bool "diagnostics dumped" true (String.length diagnostics > 0);
    check_bool "diagnostics list the blocked thread" true (contains diagnostics "blocked")
  | _ -> Alcotest.fail "expected a watchdog abort");
  match !wd with
  | Some wd ->
    check_bool "watchdog fired" true (Monitoring.Watchdog.fired wd);
    check_bool "watchdog polled" true (Monitoring.Watchdog.polls wd >= 3)
  | None -> Alcotest.fail "watchdog missing"

let test_watchdog_quiet_on_healthy_run () =
  let sim = Sched.create cfg in
  let polls = ref 0 in
  let outcome =
    Sched.run_outcome sim (fun () ->
        let wd = Monitoring.Watchdog.start ~poll_interval_ns:20_000 ~sched:sim () in
        let t = Cthread.fork ~proc:1 (fun () -> Cthread.work 500_000) in
        Cthread.join t;
        Monitoring.Watchdog.stop wd;
        polls := Monitoring.Watchdog.polls wd)
  in
  check_bool "healthy run completes" true (outcome = Sched.Completed);
  check_bool "watchdog was polling" true (!polls > 0)

(* -- structured outcomes ------------------------------------------- *)

exception Boom of int

let test_thread_crash_payload_preserved () =
  let sim = Sched.create cfg in
  (match
     Sched.run sim (fun () ->
         let t = Cthread.fork ~name:"bomber" ~proc:1 (fun () -> raise (Boom 42)) in
         Cthread.join t)
   with
  | () -> Alcotest.fail "expected Thread_crash"
  | exception Sched.Thread_crash (name, Boom n) ->
    check_string "crashing thread named" "bomber" name;
    check_int "original exception payload" 42 n
  | exception _ -> Alcotest.fail "wrong exception");
  let sim = Sched.create cfg in
  match
    Sched.run_outcome sim (fun () ->
        let t = Cthread.fork ~name:"bomber" ~proc:1 (fun () -> raise (Boom 7)) in
        Cthread.join t)
  with
  | Sched.Aborted { reason = Sched.Crashed (name, Boom n); diagnostics } ->
    check_string "outcome carries the thread" "bomber" name;
    check_int "outcome carries the payload" 7 n;
    check_bool "diagnostics attached" true (String.length diagnostics > 0)
  | _ -> Alcotest.fail "expected Crashed outcome"

let test_event_limit_outcome () =
  let sim = Sched.create { cfg with Config.max_events = 200 } in
  match
    Sched.run_outcome sim (fun () ->
        for _ = 1 to 10_000 do
          Ops.work 100
        done)
  with
  | Sched.Aborted { reason = Sched.Event_limit; diagnostics } ->
    check_bool "diagnostics mention the event count" true (contains diagnostics "event");
    check_string "reason renders" "event limit exceeded"
      (Sched.abort_reason_message Sched.Event_limit)
  | _ -> Alcotest.fail "expected Event_limit outcome"

let test_deadlock_payload_names_sites_and_held_locks () =
  let sim = Sched.create cfg in
  (* Any annotation subscriber switches the lock-span bookkeeping on. *)
  Sched.add_annot_hook sim (fun _ -> ());
  (match
     Sched.run sim (fun () ->
         let l1 = Locks.Lock.create ~name:"alpha" ~home:0 Locks.Lock.Blocking in
         let l2 = Locks.Lock.create ~name:"beta" ~home:1 Locks.Lock.Blocking in
         let a =
           Cthread.fork ~name:"a" ~proc:1 (fun () ->
               Locks.Lock.lock l1;
               Cthread.work 50_000;
               Locks.Lock.lock l2;
               Locks.Lock.unlock l2;
               Locks.Lock.unlock l1)
         in
         let b =
           Cthread.fork ~name:"b" ~proc:2 (fun () ->
               Locks.Lock.lock l2;
               Cthread.work 50_000;
               Locks.Lock.lock l1;
               Locks.Lock.unlock l1;
               Locks.Lock.unlock l2)
         in
         Cthread.join a;
         Cthread.join b)
   with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Deadlock msg ->
    check_bool "names thread a" true (contains msg "a(#");
    check_bool "a blocked at beta" true (contains msg "blocked at beta");
    check_bool "a holds alpha" true (contains msg "holding [alpha]");
    check_bool "b blocked at alpha" true (contains msg "blocked at alpha");
    check_bool "b holds beta" true (contains msg "holding [beta]"));
  (* and the structured variant reports the same through run_outcome *)
  let sim2 = Sched.create cfg in
  match
    Sched.run_outcome sim2 (fun () ->
        let t = Cthread.fork ~proc:1 (fun () -> Cthread.block ()) in
        Cthread.join t)
  with
  | Sched.Aborted { reason = Sched.Deadlocked _; diagnostics } ->
    check_bool "dump shows machine state" true (contains diagnostics "machine at t=")
  | _ -> Alcotest.fail "expected Deadlocked outcome"

(* -- chaos harness ------------------------------------------------- *)

let test_chaos_run_deterministic_and_invariant_checked () =
  let scenario =
    match
      List.find_opt
        (fun s -> s.Analysis_suite.scenario_name = "primitives")
        (Analysis_suite.shipped ())
    with
    | Some s -> s
    | None -> Alcotest.fail "primitives scenario missing"
  in
  let r1 = Chaos.run_scenario ~scenario ~seed:1 () in
  let r2 = Chaos.run_scenario ~scenario ~seed:1 () in
  check_bool "same seed, same chaos result" true (r1 = r2);
  check_bool "outcome structured" true
    (r1.Chaos.outcome = "completed" || r1.Chaos.diagnostics <> None);
  check_bool "run passed its invariants" true (Chaos.passed r1);
  (* replay of the dumped plan reproduces the run *)
  let replayed =
    Chaos.replay ~scenario ~plan:(Faults.Fault_plan.of_string r1.Chaos.plan)
  in
  check_string "replay reproduces the injection log"
    (String.concat "|" r1.Chaos.injected)
    (String.concat "|" replayed.Chaos.injected);
  check_int "replay reproduces the final clock" r1.Chaos.final_time_ns
    replayed.Chaos.final_time_ns

let test_chaos_json_shape () =
  let scenario = List.hd (Analysis_suite.shipped ()) in
  let results = Chaos.sweep ~domains:1 ~seeds:[ 1; 2 ] ~scenarios:[ scenario ] () in
  check_int "two runs" 2 (List.length results);
  let json = Chaos.to_json results in
  check_bool "json has totals" true (contains json "\"total_runs\": 2");
  check_bool "json carries plans" true (contains json "\"plan\":");
  check_bool "json carries outcomes" true (contains json "\"outcome\":");
  check_bool "summary counts runs" true (contains (Chaos.summary_line results) "2 runs")

let suite =
  [
    Alcotest.test_case "fault plan round-trips" `Quick test_plan_roundtrip;
    Alcotest.test_case "fault plan generation deterministic" `Quick
      test_plan_generate_deterministic;
    Alcotest.test_case "timers fire in order" `Quick
      test_timers_fire_in_time_then_insertion_order;
    Alcotest.test_case "unreached timers discarded" `Quick
      test_unreached_timers_are_discarded;
    Alcotest.test_case "kill wakes joiner, strands lock" `Quick
      test_kill_thread_wakes_joiner_and_strands_lock;
    Alcotest.test_case "stalls and penalties slow the run" `Quick
      test_stall_and_penalty_slow_the_run;
    Alcotest.test_case "memory degradation" `Quick test_memory_degradation;
    Alcotest.test_case "empty plan is invisible" `Quick test_empty_plan_is_invisible;
    Alcotest.test_case "injector applies and logs" `Quick test_injector_applies_and_logs;
    Alcotest.test_case "injected run deterministic" `Quick
      test_injected_run_is_deterministic;
    Alcotest.test_case "backoff gaps" `Quick test_backoff_gaps;
    Alcotest.test_case "backoff retry" `Quick test_backoff_retry;
    Alcotest.test_case "lock_timeout" `Quick test_lock_timeout;
    Alcotest.test_case "lock_retrying recovers" `Quick test_lock_retrying_recovers;
    Alcotest.test_case "guardrail clamp and fallback" `Quick
      test_guardrail_clamp_and_fallback;
    Alcotest.test_case "adaptive lock guardrail fallback" `Quick
      test_adaptive_lock_guardrail_fallback;
    Alcotest.test_case "watchdog aborts a stalled run" `Quick
      test_watchdog_turns_stall_into_structured_abort;
    Alcotest.test_case "watchdog quiet on healthy run" `Quick
      test_watchdog_quiet_on_healthy_run;
    Alcotest.test_case "thread crash payload preserved" `Quick
      test_thread_crash_payload_preserved;
    Alcotest.test_case "event limit outcome" `Quick test_event_limit_outcome;
    Alcotest.test_case "deadlock payload enriched" `Quick
      test_deadlock_payload_names_sites_and_held_locks;
    Alcotest.test_case "chaos run deterministic" `Quick
      test_chaos_run_deterministic_and_invariant_checked;
    Alcotest.test_case "chaos sweep and json" `Quick test_chaos_json_shape;
  ]
