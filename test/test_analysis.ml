(* Analysis-library tests: vector-clock edge cases the race detector
   must get right, the composable event-hook bus, lock-misuse
   exceptions, and the sanitizer verdicts over the whole scenario
   suite (shipped stays clean, seeded bugs stay flagged). *)

open Butterfly
open Cthreads

let cfg ?(processors = 4) ?(seed = 7) () =
  { Config.default with Config.processors; seed }

let rules (r : Analysis.report) =
  List.map (fun d -> d.Analysis.Diag.rule) r.Analysis.diags

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- vector-clock edges ------------------------------------------- *)

(* Two threads touch [x] with no lock held around the accesses; the
   only possible ordering is the release->acquire edge through [m].
   With the hand-off the report must be clean, without it the same
   program is a genuine race — both outcomes exercise the HB pass. *)
let hb_via_lock ~use_lock () =
  let x = Ops.alloc1 ~node:0 () in
  let m = Locks.Lock.create ~home:0 Locks.Lock.Blocking in
  let a =
    Cthread.fork ~name:"writer" ~proc:1 (fun () ->
        Ops.write x 1;
        Locks.Lock.lock m;
        Locks.Lock.unlock m)
  in
  let b =
    Cthread.fork ~name:"reader" ~proc:2 (fun () ->
        Cthread.work 80_000;
        if use_lock then begin
          Locks.Lock.lock m;
          Locks.Lock.unlock m
        end;
        ignore (Ops.read x))
  in
  Cthread.join_all [ a; b ]

let test_release_acquire_orders () =
  let r = Analysis.check (cfg ()) (hb_via_lock ~use_lock:true) in
  check_bool "release->acquire edge orders the accesses" true (Analysis.clean r)

let test_missing_edge_is_a_race () =
  let r = Analysis.check (cfg ()) (hb_via_lock ~use_lock:false) in
  check_bool "without the hand-off the race is real" true
    (List.mem "data-race" (rules r))

(* Parent/child ordering through fork and join: the child sees the
   parent's write, the parent sees the child's, no locks anywhere. *)
let fork_join_orders () =
  let x = Ops.alloc1 ~node:0 () in
  Ops.write x 1;
  let c =
    Cthread.fork ~name:"child" ~proc:1 (fun () -> Ops.write x (Ops.read x + 1))
  in
  Cthread.join c;
  Ops.write x (Ops.read x + 1)

let test_fork_join_orders () =
  let r = Analysis.check (cfg ()) fork_join_orders in
  check_bool "fork and join edges order parent and child" true (Analysis.clean r)

(* --- event-log bus ------------------------------------------------ *)

(* Two recorders on one machine: attaching the second must not detach
   the first (the hook slot is a bus, not a single cell). *)
let test_two_observers () =
  let sim = Sched.create (cfg ()) in
  let log1 = Monitoring.Event_log.attach sim in
  let log2 = Monitoring.Event_log.attach sim in
  Sched.run sim (fun () ->
      let ts =
        List.init 3 (fun i ->
            Cthread.fork ~proc:(1 + i) (fun () -> Cthread.work 10_000))
      in
      Cthread.join_all ts);
  check_bool "first observer saw events" true (Monitoring.Event_log.length log1 > 0);
  check_int "both observers saw the same stream"
    (Monitoring.Event_log.length log1)
    (Monitoring.Event_log.length log2)

let test_blocked_spans_unmatched_final_block () =
  let sim = Sched.create (cfg ()) in
  let log = Monitoring.Event_log.attach sim in
  let tid = ref (-1) in
  (* The blocker's second block is never answered, so the run ends in
     a deadlock; its span list must contain only the matched pair. *)
  (try
     Sched.run sim (fun () ->
         let t =
           Cthread.fork ~name:"blocker" ~proc:1 (fun () ->
               Cthread.block ();
               Cthread.block ())
         in
         tid := Cthread.id t;
         (* long enough that the blocker has been dispatched and is
            really blocked, so the wakeup is a wakeup, not a token *)
         Cthread.work 1_000_000;
         Cthread.wakeup t)
   with Sched.Deadlock _ -> ());
  let spans = Monitoring.Event_log.blocked_spans log !tid in
  check_int "unmatched final block yields no pair" 1 (List.length spans);
  (match spans with
  | [ (b, w) ] -> check_bool "wakeup after block" true (w > b)
  | _ -> ())

(* --- lock misuse -------------------------------------------------- *)

let test_unlock_not_held_raises () =
  let misuses = ref 0 in
  let sim = Sched.create (cfg ()) in
  Sched.run sim (fun () ->
      List.iter
        (fun kind ->
          let l = Locks.Lock.create ~home:0 kind in
          (try Locks.Lock.unlock l
           with Locks.Lock_core.Misuse _ -> incr misuses);
          (* and a double unlock, the other way to get there *)
          Locks.Lock.lock l;
          Locks.Lock.unlock l;
          try Locks.Lock.unlock l
          with Locks.Lock_core.Misuse _ -> incr misuses)
        [ Locks.Lock.Spin; Locks.Lock.Blocking; Locks.Lock.adaptive_default ]);
  check_int "every bad unlock raised Misuse" 6 !misuses

(* --- scenario suite ----------------------------------------------- *)

let test_suite_verdicts () =
  List.iter
    (fun s ->
      let report = Analysis_suite.check s in
      match Analysis_suite.verdict s report with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: %s" s.Analysis_suite.scenario_name msg)
    (Analysis_suite.all ())

let test_deterministic_report () =
  let s =
    List.find
      (fun s -> s.Analysis_suite.scenario_name = "buggy-racy-counter")
      (Analysis_suite.all ())
  in
  let r1 = Analysis_suite.check s and r2 = Analysis_suite.check s in
  let render (r : Analysis.report) =
    String.concat "\n" (List.map Analysis.Diag.to_string r.Analysis.diags)
  in
  Alcotest.(check string) "identical diagnostics" (render r1) (render r2);
  check_int "identical event counts" r1.Analysis.events r2.Analysis.events;
  check_int "identical access counts" r1.Analysis.accesses r2.Analysis.accesses

let suite =
  [
    Alcotest.test_case "release-acquire orders" `Quick test_release_acquire_orders;
    Alcotest.test_case "missing edge is a race" `Quick test_missing_edge_is_a_race;
    Alcotest.test_case "fork-join orders" `Quick test_fork_join_orders;
    Alcotest.test_case "two observers share the bus" `Quick test_two_observers;
    Alcotest.test_case "blocked_spans unmatched block" `Quick
      test_blocked_spans_unmatched_final_block;
    Alcotest.test_case "unlock misuse raises" `Quick test_unlock_not_held_raises;
    Alcotest.test_case "suite verdicts" `Slow test_suite_verdicts;
    Alcotest.test_case "deterministic report" `Quick test_deterministic_report;
  ]
