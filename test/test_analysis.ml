(* Analysis-library tests: vector-clock edge cases the race detector
   must get right, the composable event-hook bus, lock-misuse
   exceptions, and the sanitizer verdicts over the whole scenario
   suite (shipped stays clean, seeded bugs stay flagged). *)

open Butterfly
open Cthreads

let cfg ?(processors = 4) ?(seed = 7) () =
  { Config.default with Config.processors; seed }

let rules (r : Analysis.report) =
  List.map (fun d -> d.Analysis.Diag.rule) r.Analysis.diags

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- vector-clock edges ------------------------------------------- *)

(* Two threads touch [x] with no lock held around the accesses; the
   only possible ordering is the release->acquire edge through [m].
   With the hand-off the report must be clean, without it the same
   program is a genuine race — both outcomes exercise the HB pass. *)
let hb_via_lock ~use_lock () =
  let x = Ops.alloc1 ~node:0 () in
  let m = Locks.Lock.create ~home:0 Locks.Lock.Blocking in
  let a =
    Cthread.fork ~name:"writer" ~proc:1 (fun () ->
        Ops.write x 1;
        Locks.Lock.lock m;
        Locks.Lock.unlock m)
  in
  let b =
    Cthread.fork ~name:"reader" ~proc:2 (fun () ->
        Cthread.work 80_000;
        if use_lock then begin
          Locks.Lock.lock m;
          Locks.Lock.unlock m
        end;
        ignore (Ops.read x))
  in
  Cthread.join_all [ a; b ]

let test_release_acquire_orders () =
  let r = Analysis.check (cfg ()) (hb_via_lock ~use_lock:true) in
  check_bool "release->acquire edge orders the accesses" true (Analysis.clean r)

let test_missing_edge_is_a_race () =
  let r = Analysis.check (cfg ()) (hb_via_lock ~use_lock:false) in
  check_bool "without the hand-off the race is real" true
    (List.mem "data-race" (rules r))

(* Parent/child ordering through fork and join: the child sees the
   parent's write, the parent sees the child's, no locks anywhere. *)
let fork_join_orders () =
  let x = Ops.alloc1 ~node:0 () in
  Ops.write x 1;
  let c =
    Cthread.fork ~name:"child" ~proc:1 (fun () -> Ops.write x (Ops.read x + 1))
  in
  Cthread.join c;
  Ops.write x (Ops.read x + 1)

let test_fork_join_orders () =
  let r = Analysis.check (cfg ()) fork_join_orders in
  check_bool "fork and join edges order parent and child" true (Analysis.clean r)

(* --- event-log bus ------------------------------------------------ *)

(* Two recorders on one machine: attaching the second must not detach
   the first (the hook slot is a bus, not a single cell). *)
let test_two_observers () =
  let sim = Sched.create (cfg ()) in
  let log1 = Monitoring.Event_log.attach sim in
  let log2 = Monitoring.Event_log.attach sim in
  Sched.run sim (fun () ->
      let ts =
        List.init 3 (fun i ->
            Cthread.fork ~proc:(1 + i) (fun () -> Cthread.work 10_000))
      in
      Cthread.join_all ts);
  check_bool "first observer saw events" true (Monitoring.Event_log.length log1 > 0);
  check_int "both observers saw the same stream"
    (Monitoring.Event_log.length log1)
    (Monitoring.Event_log.length log2)

let test_blocked_spans_unmatched_final_block () =
  let sim = Sched.create (cfg ()) in
  let log = Monitoring.Event_log.attach sim in
  let tid = ref (-1) in
  (* The blocker's second block is never answered, so the run ends in
     a deadlock; its span list must contain only the matched pair. *)
  (try
     Sched.run sim (fun () ->
         let t =
           Cthread.fork ~name:"blocker" ~proc:1 (fun () ->
               Cthread.block ();
               Cthread.block ())
         in
         tid := Cthread.id t;
         (* long enough that the blocker has been dispatched and is
            really blocked, so the wakeup is a wakeup, not a token *)
         Cthread.work 1_000_000;
         Cthread.wakeup t)
   with Sched.Deadlock _ -> ());
  let spans = Monitoring.Event_log.blocked_spans log !tid in
  check_int "unmatched final block yields no pair" 1 (List.length spans);
  (match spans with
  | [ (b, w) ] -> check_bool "wakeup after block" true (w > b)
  | _ -> ())

(* --- lock misuse -------------------------------------------------- *)

let test_unlock_not_held_raises () =
  let misuses = ref 0 in
  let sim = Sched.create (cfg ()) in
  Sched.run sim (fun () ->
      List.iter
        (fun kind ->
          let l = Locks.Lock.create ~home:0 kind in
          (try Locks.Lock.unlock l
           with Locks.Lock_core.Misuse _ -> incr misuses);
          (* and a double unlock, the other way to get there *)
          Locks.Lock.lock l;
          Locks.Lock.unlock l;
          try Locks.Lock.unlock l
          with Locks.Lock_core.Misuse _ -> incr misuses)
        [ Locks.Lock.Spin; Locks.Lock.Blocking; Locks.Lock.adaptive_default ]);
  check_int "every bad unlock raised Misuse" 6 !misuses

(* --- rw-lock lock-order coverage ---------------------------------- *)

(* Rw_lock's writer path participates in the lock-order graph: nesting
   the rw lock against a plain mutex in both orders (by sequential,
   never-overlapping threads) must produce the cycle. *)
let rw_vs_mutex ~reader () =
  let rw = Locks.Rw_lock.create ~name:"rw" ~home:0 () in
  let m = Locks.Lock.create ~name:"mutex" ~home:0 Locks.Lock.Blocking in
  let rw_first () =
    (if reader then Locks.Rw_lock.read_lock rw else Locks.Rw_lock.write_lock rw);
    Cthread.work 5_000;
    Locks.Lock.lock m;
    Cthread.work 5_000;
    Locks.Lock.unlock m;
    if reader then Locks.Rw_lock.read_unlock rw else Locks.Rw_lock.write_unlock rw
  in
  let m_first () =
    Locks.Lock.lock m;
    Cthread.work 5_000;
    Locks.Rw_lock.write_lock rw;
    Cthread.work 5_000;
    Locks.Rw_lock.write_unlock rw;
    Locks.Lock.unlock m
  in
  let t1 = Cthread.fork ~name:"rw-first" ~proc:1 rw_first in
  Cthread.join t1;
  let t2 = Cthread.fork ~name:"m-first" ~proc:2 m_first in
  Cthread.join t2

let test_rw_writer_lock_order_cycle () =
  let r = Analysis.check (cfg ()) (rw_vs_mutex ~reader:false) in
  check_bool "writer-path nesting inversion is a cycle" true
    (List.mem "lock-order-cycle" (rules r))

let test_rw_reader_lock_order_cycle () =
  (* The read side holds the same lock identity, so a reader nesting
     against a later writer nesting inverts the same edge. *)
  let r = Analysis.check (cfg ()) (rw_vs_mutex ~reader:true) in
  check_bool "reader-path nesting inversion is a cycle" true
    (List.mem "lock-order-cycle" (rules r))

let test_rw_consistent_order_clean () =
  let program () =
    let rw = Locks.Rw_lock.create ~name:"rw" ~home:0 () in
    let m = Locks.Lock.create ~name:"mutex" ~home:0 Locks.Lock.Blocking in
    let x = Ops.alloc1 ~node:0 () in
    let writer =
      Cthread.fork ~name:"writer" ~proc:1 (fun () ->
          Locks.Rw_lock.with_write rw (fun () ->
              Locks.Lock.lock m;
              Ops.write x (Ops.read x + 1);
              Locks.Lock.unlock m))
    in
    let reader =
      Cthread.fork ~name:"reader" ~proc:2 (fun () ->
          Cthread.work 40_000;
          Locks.Rw_lock.with_read rw (fun () ->
              Locks.Lock.lock m;
              ignore (Ops.read x);
              Locks.Lock.unlock m))
    in
    Cthread.join_all [ writer; reader ]
  in
  let r = Analysis.check (cfg ()) program in
  check_bool "consistent rw-then-mutex nesting stays clean" true (Analysis.clean r)

(* --- race-report dedupe and epoch collapse ------------------------ *)

let test_race_reports_deduped () =
  (* racy_counter races on the same site pair 5 times over; the report
     must fold them into one finding with an occurrence count. *)
  let r = Analysis.check (cfg ()) Workloads.Buggy.racy_counter in
  let race_diags =
    List.filter (fun d -> d.Analysis.Diag.rule = "data-race") r.Analysis.diags
  in
  check_int "one finding per (site pair, lock sets)" 1 (List.length race_diags);
  match race_diags with
  | [ d ] ->
    let msg = d.Analysis.Diag.message in
    let has_count =
      let n = String.length "occurrences" and m = String.length msg in
      let rec go i =
        i + n <= m && (String.sub msg i n = "occurrences" || go (i + 1))
      in
      go 0
    in
    check_bool "finding carries its occurrence count" true has_count
  | _ -> ()

let test_race_detected_after_thread_churn () =
  (* Many short-lived joined threads first: their vector clocks are
     collapsed into the finish epoch, and detection on the survivors
     must still work afterwards. *)
  let program ~locked () =
    let scratch = Ops.alloc ~node:0 8 in
    for round = 0 to 15 do
      let t =
        Cthread.fork ~name:(Printf.sprintf "short%d" round) ~proc:(1 + (round mod 3))
          (fun () -> Ops.write scratch.(round mod 8) round)
      in
      Cthread.join t
    done;
    let x = Ops.alloc1 ~node:0 () in
    let m = Locks.Lock.create ~home:0 Locks.Lock.Blocking in
    let touch v () =
      if locked then begin
        Locks.Lock.lock m;
        Ops.write x v;
        Locks.Lock.unlock m
      end
      else Ops.write x v
    in
    let a = Cthread.fork ~name:"late-a" ~proc:1 (touch 1) in
    let b = Cthread.fork ~name:"late-b" ~proc:2 (touch 2) in
    Cthread.join_all [ a; b ]
  in
  let racy = Analysis.check (cfg ()) (program ~locked:false) in
  check_bool "race still detected after churn" true
    (List.mem "data-race" (rules racy));
  let clean = Analysis.check (cfg ()) (program ~locked:true) in
  check_bool "locked variant stays clean after churn" true (Analysis.clean clean)

(* --- scenario suite ----------------------------------------------- *)

let test_suite_verdicts () =
  List.iter
    (fun s ->
      let report = Analysis_suite.check s in
      match Analysis_suite.verdict s report with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: %s" s.Analysis_suite.scenario_name msg)
    (Analysis_suite.all ())

let test_deterministic_report () =
  let s =
    List.find
      (fun s -> s.Analysis_suite.scenario_name = "buggy-racy-counter")
      (Analysis_suite.all ())
  in
  let r1 = Analysis_suite.check s and r2 = Analysis_suite.check s in
  let render (r : Analysis.report) =
    String.concat "\n" (List.map Analysis.Diag.to_string r.Analysis.diags)
  in
  Alcotest.(check string) "identical diagnostics" (render r1) (render r2);
  check_int "identical event counts" r1.Analysis.events r2.Analysis.events;
  check_int "identical access counts" r1.Analysis.accesses r2.Analysis.accesses

let test_runner_json_deterministic () =
  (* The suite runner parallelizes over domains; its JSON must not
     depend on the domain count. *)
  let picked =
    List.filter
      (fun s ->
        List.mem s.Analysis_suite.scenario_name
          [ "primitives"; "buggy-racy-counter"; "predicted-gated-order" ])
      (Analysis_suite.all ())
  in
  check_int "picked the three scenarios" 3 (List.length picked);
  let run domains =
    Analysis_suite.to_json (Analysis_suite.run_all ~domains ~predict:true picked)
  in
  Alcotest.(check string) "identical JSON at domains 1 and 2" (run 1) (run 2);
  List.iter
    (fun r ->
      check_bool (r.Analysis_suite.r_name ^ " passed") true (Analysis_suite.passed r))
    (Analysis_suite.run_all ~domains:2 ~predict:true picked)

let suite =
  [
    Alcotest.test_case "release-acquire orders" `Quick test_release_acquire_orders;
    Alcotest.test_case "missing edge is a race" `Quick test_missing_edge_is_a_race;
    Alcotest.test_case "fork-join orders" `Quick test_fork_join_orders;
    Alcotest.test_case "two observers share the bus" `Quick test_two_observers;
    Alcotest.test_case "blocked_spans unmatched block" `Quick
      test_blocked_spans_unmatched_final_block;
    Alcotest.test_case "unlock misuse raises" `Quick test_unlock_not_held_raises;
    Alcotest.test_case "rw writer path in lock-order graph" `Quick
      test_rw_writer_lock_order_cycle;
    Alcotest.test_case "rw reader path in lock-order graph" `Quick
      test_rw_reader_lock_order_cycle;
    Alcotest.test_case "rw consistent nesting clean" `Quick
      test_rw_consistent_order_clean;
    Alcotest.test_case "race reports deduped" `Quick test_race_reports_deduped;
    Alcotest.test_case "race detected after thread churn" `Quick
      test_race_detected_after_thread_churn;
    Alcotest.test_case "suite verdicts" `Slow test_suite_verdicts;
    Alcotest.test_case "deterministic report" `Quick test_deterministic_report;
    Alcotest.test_case "suite runner json deterministic" `Quick
      test_runner_json_deterministic;
  ]
