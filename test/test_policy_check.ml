(* Tests of the declarative policy IR (Spec validate/compile) and the
   static policy checker: shipped specs verify clean, seeded-bad
   fixtures are flagged, the compiled interpreter honours hysteresis
   streaks across config changes and failed applies, and the
   with_hysteresis/guard-cooldown interaction stays pinned. *)

open Butterfly
module Policy = Adaptive_core.Policy
module Spec = Policy.Spec
module PC = Analysis.Policy_check

let cfg = { Config.default with Config.processors = 4; contention = false }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let cost = Adaptive_core.Cost.reads_writes 1 1

let trans ?(repeats = 1) t_from c t_target t_label =
  { Spec.t_from; t_cond = c; t_target; t_label; t_repeats = repeats; t_cost = cost }

(* -- the checker over the shipped catalogue and the fixtures -- *)

let test_shipped_clean () =
  let ((reports, cross) as res) = PC.run ~domains:1 (PC.shipped ()) in
  Alcotest.(check int) "seven shipped specs" 7 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        (r.PC.sr_name ^ " clean")
        []
        (List.map (fun f -> f.PC.f_kind ^ ": " ^ f.PC.f_message) r.PC.sr_findings))
    reports;
  Alcotest.(check int) "no cross-object conflicts" 0 (List.length cross);
  Alcotest.(check bool) "clean" true (PC.clean res)

let test_shipped_specs_validate () =
  List.iter
    (fun spec ->
      Alcotest.(check (list string))
        (spec.Spec.s_name ^ " well-formed")
        [] (Spec.validate spec))
    (PC.shipped ())

let test_fixtures_flagged () =
  List.iter
    (fun (name, specs, expect) ->
      let x = PC.check_fixture ~name ~expect specs in
      Alcotest.(check (list string)) (name ^ " missing") [] x.PC.x_missing;
      Alcotest.(check bool) (name ^ " has findings") true (x.PC.x_findings <> []))
    (Analysis_suite.policy_fixtures ())

let test_malformed_spec_reported () =
  let bad =
    {
      Spec.s_name = "bad";
      s_kind = "fixture";
      s_attribute = "bad.attr";
      s_metric = "m";
      s_monotone = Spec.Unordered;
      s_configs = [ { Spec.c_name = "a"; c_value = 0 }; { Spec.c_name = "b"; c_value = 0 } ];
      s_initial = 7;
      s_transitions =
        [ trans ~repeats:0 0 (Spec.cond 5 ~hi:2) 0 "self"; trans 0 (Spec.cond 0) 9 "out" ];
      s_guard = None;
    }
  in
  let errs = Spec.validate bad in
  Alcotest.(check bool) "validate flags it" true (List.length errs >= 4);
  let findings = PC.check bad in
  Alcotest.(check bool) "all malformed-spec" true
    (findings <> [] && List.for_all (fun f -> f.PC.f_kind = "malformed-spec") findings);
  Alcotest.(check int) "one finding per error" (List.length errs) (List.length findings)

let test_conflict_needs_shared_attribute () =
  let pair =
    List.find_map
      (fun (n, specs, _) -> if n = "conflicting-pair" then Some specs else None)
      (Analysis_suite.policy_fixtures ())
  in
  match pair with
  | Some [ a; b ] ->
    Alcotest.(check bool) "shared attribute conflicts" true (PC.conflicts a b <> []);
    let b' = { b with Spec.s_attribute = "somewhere.else" } in
    Alcotest.(check int) "distinct attributes never conflict" 0
      (List.length (PC.conflicts a b'))
  | _ -> Alcotest.fail "conflicting-pair fixture missing"

(* -- interpreter semantics of the compiled spec -- *)

let labels = ref []

let stepper p =
  fun m ->
  match p m with
  | Policy.No_change -> "none"
  | Policy.Reconfigure { label; apply; _ } ->
    let ok = apply () in
    labels := label :: !labels;
    if ok then label else label ^ "!"

let test_compiled_rw_hysteresis () =
  (* writer-pref on the first waiting writer; reader-pref only after 3
     consecutive writer-free samples, with the streak broken by any
     non-matching sample. *)
  let cfgv = ref 0 in
  let p =
    Spec.compile (Locks.Rw_lock.policy_spec ())
      ~read:(fun () -> !cfgv)
      ~apply:(fun v ->
        cfgv := v;
        true)
      ~metric:(fun (m : int) -> m)
  in
  let step = stepper p in
  Alcotest.(check string) "calm at start" "none" (step 0);
  Alcotest.(check string) "first writer flips" "writer-pref" (step 3);
  Alcotest.(check string) "calm 1" "none" (step 0);
  Alcotest.(check string) "calm 2" "none" (step 0);
  Alcotest.(check string) "straggler breaks the streak" "none" (step 2);
  Alcotest.(check string) "calm 1 again" "none" (step 0);
  Alcotest.(check string) "calm 2 again" "none" (step 0);
  Alcotest.(check string) "calm 3 fires" "reader-pref" (step 0);
  Alcotest.(check int) "back to reader pref" 0 !cfgv

let test_compiled_counter_resets_on_config_change () =
  let cfgv = ref 0 in
  let p =
    Spec.compile (Locks.Rw_lock.policy_spec ())
      ~read:(fun () -> !cfgv)
      ~apply:(fun v ->
        cfgv := v;
        true)
      ~metric:(fun (m : int) -> m)
  in
  let step = stepper p in
  Alcotest.(check string) "flip to writer" "writer-pref" (step 3);
  Alcotest.(check string) "calm 1" "none" (step 0);
  Alcotest.(check string) "calm 2" "none" (step 0);
  (* an external agent bounces the attribute: the streak must restart *)
  cfgv := 0;
  Alcotest.(check string) "external flip observed" "none" (step 0);
  cfgv := 1;
  Alcotest.(check string) "fresh streak 1" "none" (step 0);
  Alcotest.(check string) "fresh streak 2" "none" (step 0);
  Alcotest.(check string) "fresh streak 3 fires" "reader-pref" (step 0)

let test_compiled_failed_apply_retries () =
  (* an apply that reports failure (external agent losing the
     ownership race) must not consume the hysteresis streak: the very
     next enabled sample retries instead of re-accumulating. *)
  let cfgv = ref 1 in
  let ok = ref false in
  let p =
    Spec.compile (Locks.Rw_lock.policy_spec ())
      ~read:(fun () -> !cfgv)
      ~apply:(fun v ->
        if !ok then begin
          cfgv := v;
          true
        end
        else false)
      ~metric:(fun (m : int) -> m)
  in
  let step = stepper p in
  Alcotest.(check string) "calm 1" "none" (step 0);
  Alcotest.(check string) "calm 2" "none" (step 0);
  Alcotest.(check string) "fires but apply loses" "reader-pref!" (step 0);
  Alcotest.(check string) "immediate retry, no re-accumulation" "reader-pref!" (step 0);
  ok := true;
  Alcotest.(check string) "retry lands" "reader-pref" (step 0);
  Alcotest.(check int) "applied" 0 !cfgv;
  (* the successful apply reset the counter: three fresh samples needed *)
  cfgv := 1;
  Alcotest.(check string) "config change resets" "none" (step 0);
  Alcotest.(check string) "streak 2" "none" (step 0);
  Alcotest.(check string) "streak 3 fires" "reader-pref" (step 0)

let test_compiled_inert_off_spec () =
  (* soundness caveat pinned: an externally forced configuration value
     outside the spec leaves the compiled policy inert. *)
  let cfgv = ref 99 in
  let p =
    Spec.compile (Locks.Rw_lock.policy_spec ())
      ~read:(fun () -> !cfgv)
      ~apply:(fun _ -> Alcotest.fail "must not reconfigure from an off-spec config")
      ~metric:(fun (m : int) -> m)
  in
  List.iter
    (fun m ->
      match p m with
      | Policy.No_change -> ()
      | Policy.Reconfigure _ -> Alcotest.fail "decided from an off-spec config")
    [ 0; 1; 5; 0 ]

(* -- constructor validation: parameterizations the checker proves
   thrashing are rejected up front (the satellite threshold-fault
   fixes) -- *)

let test_constructor_threshold_validation () =
  Alcotest.check_raises "barrier overlap"
    (Invalid_argument
       "Adaptive_barrier.create: spin_if_under must be below block_if_over \
        (overlapping thresholds thrash)")
    (fun () ->
      ignore (Cthreads.Adaptive_barrier.create ~spin_if_under:9 ~block_if_over:9 2));
  Alcotest.check_raises "condition overlap"
    (Invalid_argument "Adaptive_condition.create: broadcast_over must be at least 2")
    (fun () -> ignore (Cthreads.Adaptive_condition.create ~broadcast_over:1 ()));
  Alcotest.check_raises "semaphore overlap"
    (Invalid_argument "Adaptive_semaphore.create: block_over must be at least 1")
    (fun () -> ignore (Cthreads.Adaptive_semaphore.create ~block_over:0 1));
  (* and the checker agrees those parameterizations thrash *)
  let thrashes spec =
    List.exists (fun f -> f.PC.f_kind = "thrash-cycle") (PC.check spec)
  in
  Alcotest.(check bool) "barrier spec thrashes" true
    (thrashes (Cthreads.Adaptive_barrier.policy_spec ~spin_if_under:9 ~block_if_over:9 ()));
  Alcotest.(check bool) "condition spec thrashes" true
    (thrashes (Cthreads.Adaptive_condition.policy_spec ~broadcast_over:1 ()));
  Alcotest.(check bool) "semaphore spec thrashes" true
    (thrashes (Cthreads.Adaptive_semaphore.policy_spec ~block_over:0 ()))

(* -- with_hysteresis edge cases (need the virtual clock) -- *)

let test_hysteresis_window_needs_successful_apply () =
  let applied = ref 0 in
  let decisions = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let ok = ref false in
        let base _ =
          Policy.reconfigure_checked ~label:"r" (fun () ->
              if !ok then begin
                incr applied;
                true
              end
              else false)
        in
        let p = Policy.with_hysteresis ~min_gap:100_000 base in
        let fire () =
          match p 0 with
          | Policy.Reconfigure { apply; _ } ->
            decisions := (if apply () then "applied" else "lost") :: !decisions
          | Policy.No_change -> decisions := "suppressed" :: !decisions
        in
        fire ();
        (* the failed apply must not start the suppression window *)
        Ops.work 10_000;
        fire ();
        ok := true;
        Ops.work 10_000;
        fire ();
        (* now a success did land: the window suppresses this one *)
        Ops.work 10_000;
        fire ();
        Ops.work 200_000;
        fire ())
  in
  Alcotest.(check (list string))
    "no-op applies never open the window"
    [ "lost"; "lost"; "applied"; "suppressed"; "applied" ]
    (List.rev !decisions);
  Alcotest.(check int) "two applied" 2 !applied

let test_min_gap_swallows_guard_fallback () =
  (* Pin the min_gap x guard-cooldown interaction: a guard-ordered
     fallback suppressed by the hysteresis window is consumed — the
     guard starts its cooldown although nothing was applied — so the
     fallback only lands after a fresh pathological streak outside the
     window. *)
  let spec =
    {
      Spec.s_name = "guarded";
      s_kind = "fixture";
      s_attribute = "guarded.attr";
      s_metric = "m";
      s_monotone = Spec.Up_at_high;
      s_configs = [ { Spec.c_name = "lo"; c_value = 0 }; { Spec.c_name = "hi"; c_value = 1 } ];
      s_initial = 0;
      s_transitions =
        [ trans 0 (Spec.cond 5 ~hi:9) 1 "up"; trans 1 (Spec.cond 0 ~hi:1) 0 "down" ];
      s_guard =
        Some
          {
            Spec.g_clamp_lo = 0;
            g_clamp_hi = 10;
            g_wedge = None;
            g_limit = 2;
            g_cooldown = 2;
            g_fallback = 0;
            g_fallback_label = "fallback";
            g_fallback_cost = cost;
          };
    }
  in
  let seen = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let cfgv = ref 0 in
        let p =
          Policy.with_hysteresis ~min_gap:100_000
            (Spec.compile spec
               ~read:(fun () -> !cfgv)
               ~apply:(fun v ->
                 cfgv := v;
                 true)
               ~metric:(fun (m : int) -> m))
        in
        let feed m =
          (match p m with
          | Policy.Reconfigure { label; apply; _ } ->
            ignore (apply () : bool);
            seen := label :: !seen
          | Policy.No_change -> seen := "-" :: !seen);
          Ops.work 1_000
        in
        (* a normal adaptation opens the suppression window *)
        feed 7;
        (* pathological streak (metric beyond the clamp) orders a
           fallback... which the window swallows *)
        feed 50;
        feed 50;
        (* guard is now cooling down: more pathology is ignored *)
        feed 50;
        feed 50;
        (* cooldown over; rebuild the streak outside the window *)
        Ops.work 200_000;
        feed 50;
        feed 50;
        Alcotest.(check int) "fallback finally applied" 0 !cfgv)
  in
  Alcotest.(check (list string))
    "window swallows the first fallback; cooldown defers the second"
    [ "up"; "-"; "-"; "-"; "-"; "-"; "fallback" ]
    (List.rev !seen)

(* -- Policy.Guard cooldown edges -- *)

let test_guard_cooldown_resumes () =
  let g = Policy.Guard.create ~pathological_limit:2 ~cooldown:3 () in
  let note p = Policy.Guard.note g ~pathological:p in
  Alcotest.(check bool) "streak 1" false (note true);
  Alcotest.(check bool) "streak 2 fires" true (note true);
  Alcotest.(check int) "one fallback" 1 (Policy.Guard.fallbacks g);
  (* cooldown: three pathological samples ignored *)
  Alcotest.(check bool) "cooldown 1" false (note true);
  Alcotest.(check bool) "cooldown 2" false (note true);
  Alcotest.(check bool) "cooldown 3" false (note true);
  (* counting resumes *)
  Alcotest.(check bool) "fresh streak 1" false (note true);
  Alcotest.(check bool) "fresh streak 2 fires" true (note true);
  Alcotest.(check int) "two fallbacks" 2 (Policy.Guard.fallbacks g);
  (* a healthy sample during a streak resets it *)
  Alcotest.(check bool) "cd" false (note true);
  Alcotest.(check bool) "cd" false (note true);
  Alcotest.(check bool) "cd" false (note true);
  Alcotest.(check bool) "streak 1" false (note true);
  Alcotest.(check bool) "healthy resets" false (note false);
  Alcotest.(check bool) "streak 1 again" false (note true);
  Alcotest.(check bool) "streak 2 fires again" true (note true)

let suite =
  [
    Alcotest.test_case "shipped specs verify clean" `Quick test_shipped_clean;
    Alcotest.test_case "shipped specs validate" `Quick test_shipped_specs_validate;
    Alcotest.test_case "fixtures flagged" `Quick test_fixtures_flagged;
    Alcotest.test_case "malformed spec reported" `Quick test_malformed_spec_reported;
    Alcotest.test_case "conflicts need shared attribute" `Quick
      test_conflict_needs_shared_attribute;
    Alcotest.test_case "compiled rw hysteresis" `Quick test_compiled_rw_hysteresis;
    Alcotest.test_case "counter resets on config change" `Quick
      test_compiled_counter_resets_on_config_change;
    Alcotest.test_case "failed apply retries" `Quick test_compiled_failed_apply_retries;
    Alcotest.test_case "inert off-spec" `Quick test_compiled_inert_off_spec;
    Alcotest.test_case "constructor threshold validation" `Quick
      test_constructor_threshold_validation;
    Alcotest.test_case "hysteresis window needs success" `Quick
      test_hysteresis_window_needs_successful_apply;
    Alcotest.test_case "min_gap swallows guard fallback" `Quick
      test_min_gap_swallows_guard_fallback;
    Alcotest.test_case "guard cooldown resumes" `Quick test_guard_cooldown_resumes;
  ]
