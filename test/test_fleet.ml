(* The experiment fleet: JSON stability, store round-trips, config-hash
   invariants, spec expansion, catalogue validation, query determinism,
   and the store-vs-legacy byte-identity contract. *)

let check = Alcotest.check
let bool = Alcotest.bool
let string = Alcotest.string
let int = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let replace_once s ~sub ~by =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then None
    else if String.sub s i n = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

let tmp_file name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) ("fleet_test_" ^ name) in
  if Sys.file_exists path then Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Jsonv                                                              *)

let test_jsonv_roundtrip () =
  let open Fleet.Jsonv in
  let docs =
    [
      {|{"a":1,"b":[true,false,null],"c":"x\ny\"z\\"}|};
      {|[1.5,-2e3,0.001,12345678901.4,3,0]|};
      {|{"nested":{"k":[{"deep":"v"}]},"empty":{},"earr":[]}|};
      {|"just a string"|};
      {|42|};
    ]
  in
  List.iter
    (fun doc ->
      match parse doc with
      | Error e -> Alcotest.failf "parse %s: %s" doc e
      | Ok v -> (
        let printed = to_string v in
        match parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v2 -> check string ("stable: " ^ doc) printed (to_string v2)))
    docs

let test_jsonv_num_idempotent () =
  let open Fleet.Jsonv in
  List.iter
    (fun v ->
      let s = num_str v in
      let v2 = float_of_string s in
      check string (Printf.sprintf "num_str idempotent for %h" v) s (num_str v2))
    [
      0.; 1.; -1.; 0.1; 1. /. 3.; 1e-7; 12345678901.4; 1e15; 1.23e15; -4.56e-9;
      Float.pi; 1_000_000.5; 2.5e20;
    ]

let test_jsonv_errors () =
  let open Fleet.Jsonv in
  List.iter
    (fun doc ->
      match parse doc with
      | Ok _ -> Alcotest.failf "expected parse error for %s" doc
      | Error _ -> ())
    [ "{"; "[1,"; {|{"a"}|}; "tru"; ""; "1 2"; {|{"a":1,}|} ]

let test_jsonv_canonical () =
  let open Fleet.Jsonv in
  match parse {|{"z":1,"a":{"y":2,"b":3},"m":[{"q":4,"p":5}]}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
    check string "keys sorted recursively"
      {|{"a":{"b":3,"y":2},"m":[{"p":5,"q":4}],"z":1}|}
      (to_string (canonical v))

(* ------------------------------------------------------------------ *)
(* Store                                                              *)

let sample_record ?(rev = "deadbeefcafe") ?(config = [ ("b", "2"); ("a", "1") ])
    ?(metrics = [ ("total_ns", 12345.); ("mean_wait_us", 6.25) ]) () =
  Fleet.Store.make ~spec:"spec-x" ~rev ~host:"testhost" ~driver:"csweep"
    ~kind:"CSWEEP" ~config ~metrics ~payload:"{\"payload\":\"bytes\\n\"}" ()

let test_store_line_roundtrip () =
  let r = sample_record () in
  let line = Fleet.Store.to_line r in
  check bool "single line" false (String.contains line '\n');
  match Fleet.Store.of_line line with
  | Error e -> Alcotest.fail e
  | Ok r2 ->
    check string "byte-identical through a round trip" line (Fleet.Store.to_line r2);
    check string "payload preserved" r.Fleet.Store.r_payload r2.Fleet.Store.r_payload;
    check string "hash preserved" r.Fleet.Store.r_hash r2.Fleet.Store.r_hash

let test_store_file_roundtrip () =
  let path = tmp_file "store.jsonl" in
  let records =
    [
      sample_record ();
      sample_record ~rev:"0123456789ab" ~metrics:[ ("total_ns", 999.) ] ();
    ]
  in
  Fleet.Store.append ~path records;
  Fleet.Store.append ~path [ sample_record ~config:[ ("c", "3") ] () ];
  (match Fleet.Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    check int "all appended records load" 3 (List.length loaded);
    List.iteri
      (fun i (a, b) ->
        check string
          (Printf.sprintf "record %d reserializes identically" i)
          (Fleet.Store.to_line a) (Fleet.Store.to_line b))
      (List.combine (records @ [ sample_record ~config:[ ("c", "3") ] () ]) loaded));
  Sys.remove path

let test_store_missing_file () =
  match Fleet.Store.load ~path:"/nonexistent/fleet/store.jsonl" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty store"
  | Error e -> Alcotest.fail e

let test_config_hash_stability () =
  let h1 = Fleet.Store.config_hash ~driver:"csweep" [ ("a", "1"); ("b", "2") ] in
  let h2 = Fleet.Store.config_hash ~driver:"csweep" [ ("b", "2"); ("a", "1") ] in
  check string "field order does not change the hash" h1 h2;
  let h3 = Fleet.Store.config_hash ~driver:"csweep" [ ("a", "1"); ("b", "3") ] in
  check bool "different value, different hash" false (h1 = h3);
  let h4 = Fleet.Store.config_hash ~driver:"chaos" [ ("a", "1"); ("b", "2") ] in
  check bool "different driver, different hash" false (h1 = h4);
  (* Records built from reordered configs serialize identically. *)
  let r1 = sample_record ~config:[ ("a", "1"); ("b", "2") ] () in
  let r2 = sample_record ~config:[ ("b", "2"); ("a", "1") ] () in
  check string "record bytes independent of config field order"
    (Fleet.Store.to_line r1) (Fleet.Store.to_line r2)

let test_store_schema_rejection () =
  let line = Fleet.Store.to_line (sample_record ()) in
  (* Forge a future-format record by bumping the schema field. *)
  let future = replace_once line ~sub:"\"schema\":1" ~by:"\"schema\":2" in
  check bool "forged line differs" false (line = future);
  (match Fleet.Store.of_line future with
  | Ok _ -> Alcotest.fail "schema 2 must be rejected"
  | Error e -> check bool "error names the schema" true (contains e "schema"));
  let path = tmp_file "store_future.jsonl" in
  let oc = open_out path in
  output_string oc (line ^ "\n" ^ future ^ "\n");
  close_out oc;
  (match Fleet.Store.load ~path with
  | Ok _ -> Alcotest.fail "load must propagate the unknown-schema error"
  | Error e -> check bool "error names the line" true (contains e ":2:"));
  Sys.remove path

let test_store_rejects_garbage () =
  List.iter
    (fun line ->
      match Fleet.Store.of_line line with
      | Ok _ -> Alcotest.failf "expected rejection of %s" line
      | Error _ -> ())
    [
      "not json";
      "{}";
      {|{"schema":1}|};
      (* missing metrics *)
      {|{"config":{},"config_hash":"x","driver":"d","git_rev":"r","host":"h","kind":"K","payload":"p","schema":1,"spec_id":""}|};
    ]

(* ------------------------------------------------------------------ *)
(* Spec + catalogue                                                   *)

let smoke_spec_text =
  {|{ "id": "t", "driver": "csweep",
      "axes": { "lock": ["spin", "blocking"], "cs_ns": [5000, 10000, 20000],
                "iterations": [3] } }|}

let test_spec_expansion () =
  match Fleet.Spec.of_string smoke_spec_text with
  | Error e -> Alcotest.fail e
  | Ok [ s ] ->
    check int "cross product size" 6 (Fleet.Spec.size s);
    let configs = Fleet.Spec.expand s in
    check int "expand yields size configs" 6 (List.length configs);
    (* Axes sorted by name (cs_ns < iterations < lock), last axis
       fastest, values in spec order. *)
    let as_str c = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) c) in
    check string "first config" "cs_ns=5000,iterations=3,lock=spin"
      (as_str (List.hd configs));
    check string "second config" "cs_ns=5000,iterations=3,lock=blocking"
      (as_str (List.nth configs 1));
    check string "last config" "cs_ns=20000,iterations=3,lock=blocking"
      (as_str (List.nth configs 5))
  | Ok _ -> Alcotest.fail "expected one spec"

let test_spec_errors () =
  List.iter
    (fun (label, text) ->
      match Fleet.Spec.of_string text with
      | Ok _ -> Alcotest.failf "expected spec error: %s" label
      | Error _ -> ())
    [
      ("missing id", {|{"driver":"csweep","axes":{}}|});
      ("missing driver", {|{"id":"x","axes":{}}|});
      ("missing axes", {|{"id":"x","driver":"csweep"}|});
      ("bare scalar axis", {|{"id":"x","driver":"csweep","axes":{"cs_ns":5}}|});
      ("empty axis", {|{"id":"x","driver":"csweep","axes":{"cs_ns":[]}}|});
      ("repeated ids", {|[{"id":"x","driver":"csweep","axes":{"cs_ns":[1]}},
                          {"id":"x","driver":"csweep","axes":{"cs_ns":[2]}}]|});
      ("not an object", {|17|});
    ]

let test_catalogue_validation () =
  let spec_of text =
    match Fleet.Spec.of_string text with
    | Ok [ s ] -> s
    | Ok _ | Error _ -> Alcotest.fail "fixture spec must parse"
  in
  (match Fleet.Catalogue.validate (spec_of smoke_spec_text) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let expect_error label text =
    match Fleet.Catalogue.validate (spec_of text) with
    | Ok () -> Alcotest.failf "expected validation error: %s" label
    | Error _ -> ()
  in
  expect_error "unknown driver" {|{"id":"x","driver":"nope","axes":{}}|};
  expect_error "unknown axis"
    {|{"id":"x","driver":"csweep","axes":{"warp":[1]}}|};
  expect_error "bad int"
    {|{"id":"x","driver":"csweep","axes":{"cs_ns":["fast"]}}|};
  expect_error "bad enum member"
    {|{"id":"x","driver":"csweep","axes":{"lock":["mutex9000"]}}|}

let test_catalogue_run_config () =
  let driver =
    match Fleet.Catalogue.find "csweep" with
    | Some d -> d
    | None -> Alcotest.fail "csweep driver registered"
  in
  let config = [ ("cs_ns", "5000"); ("iterations", "2"); ("processors", "2") ] in
  let metrics, payload = Fleet.Catalogue.run_config driver config in
  check bool "total_ns metric present" true (List.mem_assoc "total_ns" metrics);
  check bool "payload parses" true
    (match Fleet.Jsonv.parse payload with Ok _ -> true | Error _ -> false);
  (* Same config, same bytes: the driver is deterministic. *)
  let metrics2, payload2 = Fleet.Catalogue.run_config driver config in
  check string "payload deterministic" payload payload2;
  check bool "metrics deterministic" true (metrics = metrics2)

(* ------------------------------------------------------------------ *)
(* Query                                                              *)

let synthetic_records =
  (* Two revisions; rev2's spin config regressed on total_ns and
     improved nothing else. *)
  let mk rev lock total wait =
    Fleet.Store.make ~spec:"syn" ~rev ~host:"h" ~driver:"csweep" ~kind:"CSWEEP"
      ~config:[ ("lock", lock) ]
      ~metrics:[ ("total_ns", total); ("mean_wait_us", wait) ]
      ~payload:"{}" ()
  in
  [
    mk "aaaa111" "spin" 1000. 4.;
    mk "aaaa111" "blocking" 3000. 9.;
    mk "bbbb222" "spin" 2000. 4.5;
    mk "bbbb222" "blocking" 2900. 8.;
  ]

let test_query_parse () =
  let ok q = match Fleet.Query.parse q with Ok _ -> () | Error e -> Alcotest.fail e in
  ok "top 20 by mean_wait_us";
  ok "top 5 by total_ns where driver=csweep lock=spin";
  ok "mean total_ns group by driver";
  ok "count * group by kind";
  ok "regressions since aaaa111";
  ok "regressions since earliest tolerance 10";
  ok "list drivers";
  List.iter
    (fun q ->
      match Fleet.Query.parse q with
      | Ok _ -> Alcotest.failf "expected parse error for %S" q
      | Error _ -> ())
    [ ""; "top x by m"; "top 5 m"; "regressions"; "list everything"; "median m" ]

let test_query_polarity () =
  check bool "wait is lower-better" true
    (Fleet.Query.higher_is_better "mean_wait_us" = Some false);
  check bool "eps is higher-better" true
    (Fleet.Query.higher_is_better "events_per_sec" = Some true);
  check bool "suffixed time is lower-better" true
    (Fleet.Query.higher_is_better "moderate/adaptive/total_ns" = Some false);
  check bool "unknown says nothing" true
    (Fleet.Query.higher_is_better "adaptations" = None)

let test_query_top () =
  match Fleet.Query.parse "top 2 by total_ns" with
  | Error e -> Alcotest.fail e
  | Ok q ->
    let out = Fleet.Query.run synthetic_records q in
    (* lower-better: the two smallest totals are spin@rev1 (1000) then
       spin@rev2 (2000). *)
    let lines = String.split_on_char '\n' out in
    let row_with rank value =
      List.exists (fun l -> contains l rank && contains l value) lines
    in
    check bool "smallest first" true (row_with "| 1 " "1000");
    check bool "runner-up second" true (row_with "| 2 " "2000")

let test_query_regressions () =
  match Fleet.Query.parse "regressions since aaaa111 tolerance 5" with
  | Error e -> Alcotest.fail e
  | Ok q ->
    let out = Fleet.Query.run synthetic_records q in
    check bool "spin total_ns doubled -> flagged" true
      (contains out "lock=spin" && contains out "total_ns");
    check bool "blocking improved -> not flagged" false (contains out "lock=blocking")

let test_query_domains_determinism () =
  (* The acceptance bar: both canonical views byte-identical at
     --domains 1 and 4, on a store with enough records to split. *)
  let records =
    synthetic_records
    @ List.concat_map
        (fun i ->
          [
            Fleet.Store.make ~spec:"syn2" ~rev:"bbbb222" ~host:"h" ~driver:"switch"
              ~kind:"SWITCH"
              ~config:[ ("variant", if i mod 2 = 0 then "tas" else "mcs") ]
              ~metrics:
                [
                  ("total_ns", float_of_int (1_000_000 - (i * 777)));
                  ("mean_wait_us", float_of_int i *. 1.5);
                ]
              ~payload:"{}" ();
          ])
        (List.init 23 (fun i -> i))
  in
  List.iter
    (fun query ->
      match Fleet.Query.parse query with
      | Error e -> Alcotest.fail e
      | Ok q ->
        let d1 = Fleet.Query.run ~domains:1 records q in
        let d4 = Fleet.Query.run ~domains:4 records q in
        check string (Printf.sprintf "%S at domains 1 = 4" query) d1 d4)
    [
      "top 20 by mean_wait_us";
      "regressions since earliest";
      "mean total_ns group by driver";
      "count * group by kind";
    ]

(* ------------------------------------------------------------------ *)
(* Emit + legacy byte-identity                                        *)

let test_emit_writes_payload_verbatim () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fleet_emit_test" in
  let store = Filename.concat dir "store.jsonl" in
  if Sys.file_exists store then Sys.remove store;
  let payload = "line one\nline two \xc3\xa9\n" in
  let r =
    Fleet.Emit.artifact ~store ~csv_dir:dir ~driver:"t" ~kind:"T"
      ~legacy:"artifact.txt" ~config:[] ~metrics:[ ("m", 1.) ] ~payload ()
  in
  let read_all path = In_channel.with_open_bin path In_channel.input_all in
  check string "legacy file holds the payload bytes" payload
    (read_all (Filename.concat dir "artifact.txt"));
  (match Fleet.Store.load ~path:store with
  | Ok [ stored ] ->
    check string "stored payload = file bytes" payload stored.Fleet.Store.r_payload;
    check string "record round-trips" (Fleet.Store.to_line r)
      (Fleet.Store.to_line stored)
  | Ok _ -> Alcotest.fail "expected exactly one record"
  | Error e -> Alcotest.fail e);
  Sys.remove store;
  Sys.remove (Filename.concat dir "artifact.txt")

let test_series_csv_string_matches_output_csv () =
  let s1 = Engine.Series.create ~name:"waiting" () in
  let s2 = Engine.Series.create ~name:"other" () in
  Engine.Series.add s1 ~t:0 ~v:1.;
  Engine.Series.add s1 ~t:100 ~v:2.5;
  Engine.Series.add s2 ~t:50 ~v:0.125;
  let series = [ s1; s2 ] in
  let path = tmp_file "series.csv" in
  let oc = open_out path in
  Engine.Series.output_csv oc series;
  close_out oc;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  check string "csv_string = output_csv bytes" bytes (Engine.Series.csv_string series);
  Sys.remove path

let test_fig1_csv_string_matches_to_csv () =
  let curves =
    [
      {
        Experiments.Fig1.kind = Locks.Lock.Spin;
        points =
          [
            { Experiments.Fig1.cs_ns = 5000; total_ns = 100000 };
            { Experiments.Fig1.cs_ns = 10000; total_ns = 250000 };
          ];
      };
      {
        Experiments.Fig1.kind = Locks.Lock.Blocking;
        points =
          [
            { Experiments.Fig1.cs_ns = 5000; total_ns = 120000 };
            { Experiments.Fig1.cs_ns = 10000; total_ns = 260000 };
          ];
      };
    ]
  in
  let path = tmp_file "fig1.csv" in
  let oc = open_out path in
  Experiments.Fig1.to_csv curves oc;
  close_out oc;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  check string "csv_string = to_csv bytes" bytes (Experiments.Fig1.csv_string curves);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "jsonv: parse/print round trip is stable" `Quick
      test_jsonv_roundtrip;
    Alcotest.test_case "jsonv: float printing is idempotent" `Quick
      test_jsonv_num_idempotent;
    Alcotest.test_case "jsonv: malformed documents rejected" `Quick test_jsonv_errors;
    Alcotest.test_case "jsonv: canonical sorts keys recursively" `Quick
      test_jsonv_canonical;
    Alcotest.test_case "store: line round trip is byte-identical" `Quick
      test_store_line_roundtrip;
    Alcotest.test_case "store: append/load/reserialize round trip" `Quick
      test_store_file_roundtrip;
    Alcotest.test_case "store: missing file is an empty store" `Quick
      test_store_missing_file;
    Alcotest.test_case "store: config hash ignores field order" `Quick
      test_config_hash_stability;
    Alcotest.test_case "store: unknown schema versions rejected" `Quick
      test_store_schema_rejection;
    Alcotest.test_case "store: malformed records rejected" `Quick
      test_store_rejects_garbage;
    Alcotest.test_case "spec: cross-product expansion order" `Quick
      test_spec_expansion;
    Alcotest.test_case "spec: malformed specs rejected" `Quick test_spec_errors;
    Alcotest.test_case "catalogue: validation catches bad specs" `Quick
      test_catalogue_validation;
    Alcotest.test_case "catalogue: csweep driver runs deterministically" `Quick
      test_catalogue_run_config;
    Alcotest.test_case "query: grammar parses and rejects" `Quick test_query_parse;
    Alcotest.test_case "query: metric polarity rules" `Quick test_query_polarity;
    Alcotest.test_case "query: top ranks by polarity" `Quick test_query_top;
    Alcotest.test_case "query: regression detection since rev" `Quick
      test_query_regressions;
    Alcotest.test_case "query: byte-identical at domains 1 vs 4" `Quick
      test_query_domains_determinism;
    Alcotest.test_case "emit: store payload = legacy file bytes" `Quick
      test_emit_writes_payload_verbatim;
    Alcotest.test_case "series: csv_string matches output_csv" `Quick
      test_series_csv_string_matches_output_csv;
    Alcotest.test_case "fig1: csv_string matches to_csv" `Quick
      test_fig1_csv_string_matches_to_csv;
  ]
