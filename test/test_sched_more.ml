(* Further scheduler/engine tests: introspection, preemption
   accounting, placement, limits, and non-preemptive semantics. *)

open Butterfly

let base_cfg =
  {
    Config.default with
    Config.processors = 4;
    contention = false;
    quantum_ns = None;
    switch_ns = 1_000;
    fork_ns = 2_000;
    wakeup_latency_ns = 500;
    block_ns = 1_000;
    unblock_ns = 1_000;
  }

let run ?(cfg = base_cfg) main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_busy_accounting () =
  let sim =
    run (fun () ->
        let t =
          Cthreads.Cthread.fork ~proc:2 (fun () -> Ops.work 100_000)
        in
        Ops.work 50_000;
        Cthreads.Cthread.join t)
  in
  let busy = Sched.processor_busy_ns sim in
  check_bool "proc 0 busy at least its work" true (busy.(0) >= 50_000);
  check_bool "proc 2 busy at least child's work" true (busy.(2) >= 100_000);
  check_int "proc 3 idle" 0 busy.(3)

let test_thread_report () =
  let sim =
    run (fun () ->
        let t = Cthreads.Cthread.fork ~name:"worker" ~proc:1 (fun () -> Ops.work 42_000) in
        Cthreads.Cthread.join t)
  in
  let report = Sched.thread_report sim in
  check_int "two threads" 2 (List.length report);
  let _, name, cpu = List.nth report 1 in
  Alcotest.(check string) "named" "worker" name;
  check_bool "cpu recorded" true (cpu >= 42_000)

let test_round_robin_placement () =
  let procs = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let ts =
          List.init 4 (fun _ ->
              Cthreads.Cthread.fork (fun () -> procs := Ops.my_processor () :: !procs))
        in
        Cthreads.Cthread.join_all ts)
  in
  let sorted = List.sort_uniq compare !procs in
  check_bool "spread over several processors" true (List.length sorted >= 3)

let test_fork_bad_processor () =
  let raised = ref false in
  (try
     let (_ : Sched.t) =
       run (fun () ->
           ignore (Ops.fork { f = (fun () -> ()); proc = Some 99; prio = 0; name = "x" }))
     in
     ()
   with
   | Invalid_argument _ -> raised := true
   | Sched.Thread_crash (_, Invalid_argument _) -> raised := true);
  check_bool "bad processor rejected" true !raised

let test_event_limit () =
  let raised = ref false in
  (try
     let cfg = { base_cfg with Config.max_events = 50 } in
     let (_ : Sched.t) =
       run ~cfg (fun () ->
           for _ = 1 to 1000 do
             Ops.work 10
           done)
     in
     ()
   with Sched.Event_limit_exceeded -> raised := true);
  check_bool "event limit fires" true !raised

let test_trace_hook () =
  let messages = ref [] in
  let sim = Sched.create base_cfg in
  Sched.add_trace_hook sim (fun ~time ~tid msg -> messages := (time, tid, msg) :: !messages);
  Sched.run sim (fun () ->
      Ops.work 5_000;
      Ops.trace "hello");
  match !messages with
  | [ (time, tid, "hello") ] ->
    check_int "main thread" 0 tid;
    check_int "after the work" 5_000 time
  | _ -> Alcotest.fail "expected exactly one trace message"

let test_nonpreemptive_continuation () =
  (* Without a quantum, a thread issuing many short operations keeps
     its processor: its same-proc sibling only runs afterwards. *)
  let sibling_done = ref 0 and spinner_done = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let spinner =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              for _ = 1 to 100 do
                Ops.work 1_000
              done;
              spinner_done := Ops.now ())
        in
        Ops.work 1_000;
        let sibling =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              Ops.work 1_000;
              sibling_done := Ops.now ())
        in
        Cthreads.Cthread.join spinner;
        Cthreads.Cthread.join sibling)
  in
  check_bool "sibling ran only after the spinner finished" true
    (!sibling_done > !spinner_done)

let test_quantum_preempts_short_ops () =
  (* With a quantum, the same pattern interleaves: the sibling finishes
     long before the spinner. *)
  let cfg = { base_cfg with Config.quantum_ns = Some 5_000 } in
  let sibling_done = ref 0 and spinner_done = ref 0 in
  let sim =
    run ~cfg (fun () ->
        let spinner =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              for _ = 1 to 100 do
                Ops.work 1_000
              done;
              spinner_done := Ops.now ())
        in
        Ops.work 1_000;
        let sibling =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              Ops.work 1_000;
              sibling_done := Ops.now ())
        in
        Cthreads.Cthread.join spinner;
        Cthreads.Cthread.join sibling)
  in
  check_bool "sibling slipped in early" true (!sibling_done < !spinner_done);
  check_bool "preemptions counted" true
    (Engine.Counters.get (Sched.counters sim) "sched.preemptions" > 0)

let test_yield_releases_processor () =
  (* A yielding loop lets the sibling interleave even without a
     quantum. *)
  let order = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let a =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              for i = 1 to 3 do
                order := (`A, i) :: !order;
                Ops.work 1_000;
                Ops.yield ()
              done)
        in
        Ops.work 500;
        let b =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              for i = 1 to 3 do
                order := (`B, i) :: !order;
                Ops.work 1_000;
                Ops.yield ()
              done)
        in
        Cthreads.Cthread.join a;
        Cthreads.Cthread.join b)
  in
  (* Interleaved: B appears before A's last iteration. *)
  let sequence = List.rev !order in
  let first_b = ref (-1) and last_a = ref (-1) in
  List.iteri
    (fun i -> function
      | `B, 1 -> if !first_b < 0 then first_b := i
      | `A, 3 -> last_a := i
      | _ -> ())
    sequence;
  check_bool "yield interleaves" true (!first_b >= 0 && !first_b < !last_a)

let suite =
  [
    Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
    Alcotest.test_case "thread report" `Quick test_thread_report;
    Alcotest.test_case "round-robin placement" `Quick test_round_robin_placement;
    Alcotest.test_case "bad processor" `Quick test_fork_bad_processor;
    Alcotest.test_case "event limit" `Quick test_event_limit;
    Alcotest.test_case "trace hook" `Quick test_trace_hook;
    Alcotest.test_case "non-preemptive continuation" `Quick test_nonpreemptive_continuation;
    Alcotest.test_case "quantum preempts" `Quick test_quantum_preempts_short_ops;
    Alcotest.test_case "yield interleaves" `Quick test_yield_releases_processor;
  ]
