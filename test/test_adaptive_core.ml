(* Tests of the adaptive-object framework: costs, attributes
   (mutability/ownership), sensors (sampling rate), policies, and the
   feedback loop. *)

open Butterfly
module Cost = Adaptive_core.Cost
module Attribute = Adaptive_core.Attribute
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy
module Adaptive = Adaptive_core.Adaptive

let cfg = { Config.default with Config.processors = 4; contention = false }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec find i = i + n <= m && (String.sub s i n = sub || find (i + 1)) in
  find 0

let test_cost_algebra () =
  let a = Cost.make ~reads:1 ~writes:2 ~instrs:10 () in
  let b = Cost.reads_writes 3 4 in
  let c = Cost.( + ) a b in
  Alcotest.(check int) "reads add" 4 c.Cost.reads;
  Alcotest.(check int) "writes add" 6 c.Cost.writes;
  Alcotest.(check int) "instrs add" 10 c.Cost.instrs;
  Alcotest.(check string) "pp" "1R 2W 10i" (Format.asprintf "%a" Cost.pp a);
  Alcotest.(check string) "pp zero instr" "3R 4W" (Format.asprintf "%a" Cost.pp b)

let test_cost_charge_advances_time () =
  let elapsed = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let scratch = Ops.alloc1 ~node:0 () in
        let t0 = Ops.now () in
        Cost.charge ~scratch (Cost.make ~reads:2 ~writes:1 ~instrs:10 ());
        elapsed := Ops.now () - t0)
  in
  let expected =
    (2 * cfg.Config.local_read_ns) + cfg.Config.local_write_ns
    + Config.instrs cfg 10
  in
  Alcotest.(check int) "charged exactly" expected !elapsed

let test_attribute_get_set () =
  let v = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" 5 in
        Attribute.set a 9;
        v := Attribute.get a)
  in
  Alcotest.(check int) "set/get" 9 !v

let test_attribute_immutable_rejected () =
  let raised = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" ~mutable_:false 5 in
        try Attribute.set a 9 with Attribute.Immutable_attribute "x" -> raised := true)
  in
  Alcotest.(check bool) "immutable set raises" true !raised

let test_attribute_mutability_toggle () =
  let v = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" ~mutable_:false 5 in
        Attribute.set_mutability a true;
        Attribute.set a 6;
        v := Attribute.get a)
  in
  Alcotest.(check int) "mutable again" 6 !v

let test_attribute_ownership () =
  let stranger_rejected = ref false and owner_ok = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" 1 in
        let holding = ref false in
        let owner =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              Alcotest.(check bool) "acquired" true (Attribute.acquire a);
              Attribute.set a 2;
              owner_ok := true;
              holding := true;
              (* Hold ownership long enough for the stranger to try. *)
              Ops.work 600_000;
              Attribute.release a)
        in
        while not !holding do
          Ops.delay 10_000
        done;
        (try Attribute.set a 3
         with Attribute.Not_owner msg ->
           (* The message names the attribute and the holding thread. *)
           stranger_rejected :=
             contains ~sub:"x (held by thread" msg && contains ~sub:"caller thread" msg);
        Cthreads.Cthread.join owner;
        (* Released: anyone may set again. *)
        Attribute.set a 4)
  in
  Alcotest.(check bool) "owner set fine" true !owner_ok;
  Alcotest.(check bool) "stranger rejected" true !stranger_rejected

let test_attribute_acquire_is_reentrant () =
  let both = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" 1 in
        let first = Attribute.acquire a in
        let second = Attribute.acquire a in
        both := first && second;
        Attribute.release a)
  in
  Alcotest.(check bool) "same thread may re-acquire" true !both

let test_attribute_release_by_stranger_rejected () =
  let raised = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let a = Attribute.make ~name:"x" 1 in
        ignore (Attribute.acquire a);
        let stranger =
          Cthreads.Cthread.fork ~proc:1 (fun () ->
              try Attribute.release a with Attribute.Not_owner _ -> raised := true)
        in
        Cthreads.Cthread.join stranger;
        Attribute.release a)
  in
  Alcotest.(check bool) "stranger release rejected" true !raised

let test_sensor_period () =
  let samples = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let counter = ref 0 in
        let s =
          Sensor.make ~name:"s" ~period:3 ~overhead_instrs:0 (fun () ->
              incr counter;
              !counter)
        in
        for _ = 1 to 10 do
          match Sensor.tick s with Some v -> samples := v :: !samples | None -> ()
        done;
        Alcotest.(check int) "ticks seen" 10 (Sensor.ticks_seen s);
        Alcotest.(check int) "samples taken" 3 (Sensor.samples_taken s))
  in
  Alcotest.(check (list int)) "sampled on ticks 3,6,9" [ 3; 2; 1 ] !samples

let test_sensor_force () =
  let v = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let s = Sensor.make ~name:"s" ~period:100 ~overhead_instrs:0 (fun () -> 42) in
        v := Sensor.force s)
  in
  Alcotest.(check int) "force bypasses period" 42 !v

let test_sensor_set_period () =
  let count = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let s = Sensor.make ~name:"s" ~period:10 ~overhead_instrs:0 (fun () -> 0) in
        Sensor.set_period s 1;
        for _ = 1 to 5 do
          if Sensor.tick s <> None then incr count
        done)
  in
  Alcotest.(check int) "rate change takes effect" 5 !count

let test_sensor_history () =
  let len = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let s = Sensor.make ~name:"s" ~period:1 ~overhead_instrs:0 (fun () -> 7) in
        let series = Sensor.history s ~record:float_of_int in
        for _ = 1 to 4 do
          Ops.work 1_000;
          ignore (Sensor.tick s)
        done;
        len := Engine.Series.length series)
  in
  Alcotest.(check int) "history recorded" 4 !len

let test_sensor_sampling_costs_time () =
  let dt = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let s = Sensor.make ~name:"s" ~period:1 ~overhead_instrs:100 (fun () -> 0) in
        let t0 = Ops.now () in
        ignore (Sensor.tick s);
        dt := Ops.now () - t0)
  in
  Alcotest.(check int) "overhead charged" (Config.instrs cfg 100) !dt

let test_policy_compose () =
  let p1 = function 1 -> Policy.reconfigure ~label:"one" (fun () -> ()) | _ -> Policy.No_change in
  let p2 = function 2 -> Policy.reconfigure ~label:"two" (fun () -> ()) | _ -> Policy.No_change in
  let p = Policy.compose p1 p2 in
  let label = function
    | Policy.No_change -> "none"
    | Policy.Reconfigure { label; _ } -> label
  in
  Alcotest.(check string) "first wins" "one" (label (p 1));
  Alcotest.(check string) "fallback" "two" (label (p 2));
  Alcotest.(check string) "neither" "none" (label (p 3))

let test_policy_hysteresis () =
  let applied = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let base _ = Policy.reconfigure ~label:"r" (fun () -> incr applied) in
        let p = Policy.with_hysteresis ~min_gap:100_000 base in
        let fire () =
          match p 0 with
          | Policy.Reconfigure { apply; _ } -> ignore (apply () : bool)
          | Policy.No_change -> ()
        in
        fire ();
        Ops.work 10_000;
        fire ();
        (* suppressed: only 10us later *)
        Ops.work 200_000;
        fire ())
  in
  Alcotest.(check int) "two of three applied" 2 !applied

let test_feedback_loop_adapts () =
  let observed_modes = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        let level = ref 0 in
        let sensor = Sensor.make ~name:"level" ~period:2 ~overhead_instrs:0 (fun () -> !level) in
        let mode = ref "idle" in
        let policy obs =
          let next = if obs > 5 then "busy" else "idle" in
          if next = !mode then Policy.No_change
          else
            Policy.reconfigure ~label:next (fun () ->
                mode := next;
                observed_modes := next :: !observed_modes)
        in
        let loop = Adaptive.create ~name:"obj" ~home:0 ~sensor ~policy () in
        (* ticks 1-4 at level 0 -> stays idle; raise level, ticks sample
           on even counts. *)
        for i = 1 to 8 do
          level := if i >= 4 then 9 else 0;
          ignore (Adaptive.tick loop)
        done;
        level := 0;
        for _ = 9 to 12 do
          ignore (Adaptive.tick loop)
        done;
        Alcotest.(check int) "policy ran once per sample" 6 (Adaptive.policy_runs loop);
        Alcotest.(check int) "two transitions" 2 (Adaptive.adaptations loop);
        Alcotest.(check bool) "last label" true (Adaptive.last_label loop = Some "idle");
        Alcotest.(check int) "log length" 2 (List.length (Adaptive.log loop)))
  in
  Alcotest.(check (list string)) "busy then idle" [ "idle"; "busy" ] !observed_modes

let test_feedback_feed_bypasses_sensor () =
  let adapted = ref false in
  let (_ : Sched.t) =
    run (fun () ->
        let sensor = Sensor.make ~name:"s" ~period:1000 ~overhead_instrs:0 (fun () -> 0) in
        let policy obs =
          if obs = 99 then Policy.reconfigure ~label:"x" (fun () -> adapted := true)
          else Policy.No_change
        in
        let loop = Adaptive.create ~home:0 ~sensor ~policy () in
        ignore (Adaptive.feed loop 99);
        Alcotest.(check int) "no sensor samples" 0 (Adaptive.samples loop))
  in
  Alcotest.(check bool) "fed observation adapted" true !adapted

let test_feedback_charges_cost () =
  let dt = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let sensor = Sensor.make ~name:"s" ~period:1 ~overhead_instrs:0 (fun () -> 0) in
        let policy _ =
          Policy.Reconfigure
            { label = "x"; cost = Cost.reads_writes 1 1; apply = (fun () -> true) }
        in
        let loop = Adaptive.create ~home:0 ~sensor ~policy () in
        let t0 = Ops.now () in
        ignore (Adaptive.tick loop);
        dt := Ops.now () - t0;
        Alcotest.(check bool) "cost accumulated" true
          (Adaptive.total_cost loop = Cost.reads_writes 1 1))
  in
  Alcotest.(check int) "1R 1W charged"
    (cfg.Config.local_read_ns + cfg.Config.local_write_ns)
    !dt

(* A decision whose apply reports failure (e.g. an external agent
   losing the attribute-ownership race) must not count as an
   adaptation: no metrics, no log entry, no subscriber event. *)
let test_feedback_failed_apply_not_counted () =
  let events = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let sensor =
          Sensor.make ~name:"s" ~period:1 ~overhead_instrs:0 (fun () -> 0)
        in
        let ok = ref false in
        let policy _ = Policy.reconfigure_checked ~label:"maybe" (fun () -> !ok) in
        let loop = Adaptive.create ~home:0 ~sensor ~policy () in
        Adaptive.subscribe loop (fun _ -> incr events);
        Alcotest.(check bool) "failed apply reports false" false (Adaptive.tick loop);
        Alcotest.(check int) "policy ran" 1 (Adaptive.policy_runs loop);
        Alcotest.(check int) "not counted" 0 (Adaptive.adaptations loop);
        Alcotest.(check bool) "no label" true (Adaptive.last_label loop = None);
        Alcotest.(check bool) "no cost accumulated" true
          (Adaptive.total_cost loop = Cost.zero);
        ok := true;
        Alcotest.(check bool) "successful apply reports true" true
          (Adaptive.tick loop);
        Alcotest.(check int) "counted once" 1 (Adaptive.adaptations loop))
  in
  Alcotest.(check int) "subscribers saw only the applied one" 1 !events

let suite =
  [
    Alcotest.test_case "cost algebra" `Quick test_cost_algebra;
    Alcotest.test_case "cost charge" `Quick test_cost_charge_advances_time;
    Alcotest.test_case "attribute get/set" `Quick test_attribute_get_set;
    Alcotest.test_case "attribute immutability" `Quick test_attribute_immutable_rejected;
    Alcotest.test_case "mutability toggle" `Quick test_attribute_mutability_toggle;
    Alcotest.test_case "attribute ownership" `Quick test_attribute_ownership;
    Alcotest.test_case "ownership reentrant" `Quick test_attribute_acquire_is_reentrant;
    Alcotest.test_case "stranger release" `Quick test_attribute_release_by_stranger_rejected;
    Alcotest.test_case "sensor period" `Quick test_sensor_period;
    Alcotest.test_case "sensor force" `Quick test_sensor_force;
    Alcotest.test_case "sensor rate change" `Quick test_sensor_set_period;
    Alcotest.test_case "sensor history" `Quick test_sensor_history;
    Alcotest.test_case "sensor cost" `Quick test_sensor_sampling_costs_time;
    Alcotest.test_case "policy compose" `Quick test_policy_compose;
    Alcotest.test_case "policy hysteresis" `Quick test_policy_hysteresis;
    Alcotest.test_case "feedback adapts" `Quick test_feedback_loop_adapts;
    Alcotest.test_case "feedback feed" `Quick test_feedback_feed_bypasses_sensor;
    Alcotest.test_case "feedback charges cost" `Quick test_feedback_charges_cost;
    Alcotest.test_case "feedback failed apply" `Quick
      test_feedback_failed_apply_not_counted;
  ]
