(* Engine.Runner: the parallel experiment engine. Ordering, exception
   propagation, nesting, and — most importantly — byte-identical
   experiment output at every domain count. *)

let check_int = Alcotest.(check int)

let test_map_matches_list_map () =
  let inputs = List.init 57 (fun i -> i) in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "map at domains=%d" domains)
        (List.map (fun x -> (x * x) + 1) inputs)
        (Engine.Runner.map ~domains (fun x -> (x * x) + 1) inputs))
    [ 1; 2; 3; 8 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Engine.Runner.map ~domains:8 succ []);
  Alcotest.(check (list int)) "singleton" [ 42 ] (Engine.Runner.map ~domains:8 succ [ 41 ])

let test_map_array () =
  let xs = Array.init 23 (fun i -> i) in
  Alcotest.(check (array int))
    "array map" (Array.map succ xs)
    (Engine.Runner.map_array ~domains:4 succ xs)

exception Boom of int

let test_first_failure_wins () =
  (* Failures re-raise by input position, not completion time: with
     several failing inputs, the earliest one is reported at every
     domain count. *)
  List.iter
    (fun domains ->
      match
        Engine.Runner.map ~domains
          (fun x -> if x mod 10 = 3 then raise (Boom x) else x)
          (List.init 40 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> check_int (Printf.sprintf "domains=%d" domains) 3 x)
    [ 1; 2; 8 ]

let test_nested_map_degrades () =
  (* A task that itself maps must not spawn more domains; it still
     computes the right thing. *)
  let result =
    Engine.Runner.map ~domains:4
      (fun row -> Engine.Runner.map ~domains:4 (fun x -> x + row) [ 1; 2; 3 ])
      [ 10; 20 ]
  in
  Alcotest.(check (list (list int))) "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] result

let test_default_domains_override () =
  let before = Engine.Runner.default_domains () in
  Engine.Runner.set_default_domains 3;
  check_int "override" 3 (Engine.Runner.default_domains ());
  Engine.Runner.set_default_domains 0;
  check_int "clamped to 1" 1 (Engine.Runner.default_domains ());
  Engine.Runner.set_default_domains before

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts: a miniature slice of every major
   report section, rendered to a buffer at domains=1/2/8, must be
   byte-identical. *)

let mini_report ~domains () =
  let buf = Buffer.create 4096 in
  let out = Format.formatter_of_buffer buf in
  (* A small Figure 1 sweep: 2 kinds x 2 cell lengths. *)
  let base =
    {
      Workloads.Csweep.default with
      Workloads.Csweep.processors = 4;
      threads_per_proc = 2;
      iterations = 6;
    }
  in
  let curves =
    Experiments.Fig1.run ~domains ~base ~cs_lengths:[ 10_000; 60_000 ] ()
  in
  List.iter
    (fun (c : Experiments.Fig1.curve) ->
      Format.fprintf out "%s:" (Locks.Lock.kind_name c.Experiments.Fig1.kind);
      List.iter
        (fun (p : Experiments.Fig1.point) ->
          Format.fprintf out " %d=%d" p.Experiments.Fig1.cs_ns p.Experiments.Fig1.total_ns)
        c.Experiments.Fig1.points;
      Format.fprintf out "@.")
    curves;
  (* A mini TSP evaluation (all seven machine runs). *)
  let spec =
    {
      Tsp.Parallel.default_spec with
      Tsp.Parallel.cities = 10;
      instance_seed = 3;
      searchers = 3;
      work_unit_ns = 20_000;
    }
  in
  let t = Experiments.Tsp_experiments.run_all ~spec ~domains () in
  Format.fprintf out "tsp seq=%d cost=%d@." t.Experiments.Tsp_experiments.sequential_ns
    t.Experiments.Tsp_experiments.sequential_cost;
  List.iter
    (fun (row : Experiments.Tsp_experiments.table) ->
      Format.fprintf out "%s blocking=%.0f adaptive=%.0f@."
        (Tsp.Parallel.impl_name row.Experiments.Tsp_experiments.impl)
        row.Experiments.Tsp_experiments.blocking_ms
        row.Experiments.Tsp_experiments.adaptive_ms)
    t.Experiments.Tsp_experiments.tables;
  (* One parallel ablation. *)
  List.iter
    (fun (r : Experiments.Ablations.advisory_row) ->
      Format.fprintf out "advisory %s total=%d@." r.Experiments.Ablations.advisory_lock
        r.Experiments.Ablations.total_ns)
    (Experiments.Ablations.advisory ~domains ());
  Format.pp_print_flush out ();
  Buffer.contents buf

let test_report_deterministic_across_domains () =
  let reference = mini_report ~domains:1 () in
  Alcotest.(check bool) "reference is non-trivial" true (String.length reference > 100);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d matches domains=1" domains)
        reference
        (mini_report ~domains ()))
    [ 2; 8 ]

let suite =
  [
    Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
    Alcotest.test_case "map edge cases" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "first failure wins" `Quick test_first_failure_wins;
    Alcotest.test_case "nested map degrades" `Quick test_nested_map_degrades;
    Alcotest.test_case "default override" `Quick test_default_domains_override;
    Alcotest.test_case "report deterministic across domains" `Quick
      test_report_deterministic_across_domains;
  ]
