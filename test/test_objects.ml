(* Tests of the adaptive-object spine added by the registry PR: the
   per-domain registry (enumeration, subscriptions, driving, JSON
   determinism), the adaptive barrier/condition/semaphore, the guarded
   policy combinator, the registry monitor thread, watchdog adaptation
   tracking, trace adaptation annotations, and the sync-objects
   workload. *)

open Butterfly
open Cthreads
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy
module Adaptive = Adaptive_core.Adaptive
module Registry = Adaptive_core.Registry

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A trivially adaptable loop: every fed/polled observation applies a
   reconfiguration labelled [label]. *)
let always_adapt ?(label = "flip") ?name ?kind () =
  let sensor = Sensor.make ~name:"s" ~period:1 ~overhead_instrs:0 (fun () -> 0) in
  Adaptive.create ?name ?kind ~home:0 ~sensor
    ~policy:(fun _ -> Policy.reconfigure ~label (fun () -> ()))
    ()

(* -- registry ------------------------------------------------------ *)

let test_registry_enumerates_objects () =
  let snap = ref [] in
  let (_ : Sched.t) =
    run (fun () ->
        Registry.reset ();
        check_int "registry empty after reset" 0 (Registry.size ());
        let (_ : Adaptive_barrier.t) =
          Adaptive_barrier.create ~node:0 ~name:"b" 2
        in
        let (_ : Adaptive_condition.t) =
          Adaptive_condition.create ~node:0 ~name:"c" ()
        in
        let (_ : Adaptive_semaphore.t) =
          Adaptive_semaphore.create ~node:0 ~name:"s" 1
        in
        snap := Registry.snapshot ())
  in
  check_int "three objects live" 3 (List.length !snap);
  let kinds = List.map (fun m -> m.Registry.kind) !snap in
  Alcotest.(check (list string))
    "creation order preserved"
    [ "barrier"; "condition"; "semaphore" ]
    kinds;
  List.iteri (fun i m -> check_int "ids are ordinals" i m.Registry.id) !snap;
  check_string "names kept" "b" (List.hd !snap).Registry.name

let test_registry_subscribe_from_cursor () =
  let first_events = ref 0 and late_events = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        Registry.reset ();
        let l1 = always_adapt ~name:"one" () in
        let l2 = always_adapt ~name:"two" () in
        let cursor = Registry.subscribe_from 0 (fun _ -> incr first_events) in
        check_int "cursor is one past newest" 2 cursor;
        (* Re-subscribing from the cursor must not double-subscribe the
           first two objects. *)
        let l3 = always_adapt ~name:"three" () in
        let cursor' =
          Registry.subscribe_from cursor (fun _ -> incr late_events)
        in
        check_int "cursor advances" 3 cursor';
        ignore (Adaptive.feed l1 0);
        ignore (Adaptive.feed l2 0);
        ignore (Adaptive.feed l3 0))
  in
  check_int "early hook saw the early objects only" 2 !first_events;
  check_int "late hook saw only the new object" 1 !late_events

let test_registry_drive_all () =
  let driven = ref 0 and samples = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        Registry.reset ();
        let l = always_adapt () in
        driven := Registry.drive_all ();
        samples := Adaptive.samples l)
  in
  check_int "one object reconfigured" 1 !driven;
  check_int "drive forced a sensor sample" 1 !samples

(* An external sweep must skip (not crash on) an object whose drive
   loses the attribute-ownership race and raises Not_owner. *)
let test_registry_drive_all_skips_not_owner () =
  let driven = ref (-1) and healthy_samples = ref 0 in
  let empty_stats () =
    {
      Registry.samples = 0;
      policy_runs = 0;
      adaptations = 0;
      total_cost = Adaptive_core.Cost.zero;
      last_label = None;
      log = [];
    }
  in
  let (_ : Sched.t) =
    run (fun () ->
        let (_ : int) =
          Registry.register ~name:"contended" ~kind:"test" ~stats:empty_stats
            ~drive:(fun () ->
              raise (Adaptive_core.Attribute.Not_owner "held elsewhere"))
            ()
        in
        let healthy = always_adapt ~name:"healthy" () in
        driven := Registry.drive_all ();
        healthy_samples := Adaptive.samples healthy)
  in
  check_int "sweep survives and counts the healthy object" 1 !driven;
  check_int "healthy object was still driven" 1 !healthy_samples

(* The registry resets itself at every [Sched.run] start: back-to-back
   simulations on one domain never see each other's (dead) entries,
   even when nobody calls [Registry.reset]. *)
let test_registry_resets_between_runs () =
  let first = ref 0 and at_start = ref (-1) and after = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let (_ : int Adaptive.t) = always_adapt ~name:"stale" () in
        first := Registry.size ())
  in
  let (_ : Sched.t) =
    run (fun () ->
        at_start := Registry.size ();
        let (_ : int Adaptive.t) = always_adapt ~name:"fresh" () in
        after := Registry.size ())
  in
  check_int "first run registered its object" 1 !first;
  check_int "second run starts clean without a manual reset" 0 !at_start;
  check_int "second run sees only its own objects" 1 !after

let small_spec =
  { Workloads.Sync_objects.default with
    processors = 6;
    workers = 4;
    rounds = 6;
    items_each = 2;
  }

let test_registry_json_deterministic () =
  let r1 = Workloads.Sync_objects.run small_spec in
  let r2 = Workloads.Sync_objects.run small_spec in
  let j1 = Registry.to_json r1.Workloads.Sync_objects.snapshot in
  let j2 = Registry.to_json r2.Workloads.Sync_objects.snapshot in
  check_string "repeated runs serialize identically" j1 j2;
  check_bool "document is non-trivial" true (String.length j1 > 100)

let test_sync_objects_smoke () =
  let r = Workloads.Sync_objects.run small_spec in
  check_int "all five families present" 5
    (List.length r.Workloads.Sync_objects.snapshot);
  check_bool "workload adapts" true (r.Workloads.Sync_objects.adaptations > 0);
  check_bool "virtual time advanced" true (r.Workloads.Sync_objects.total_ns > 0)

(* -- adaptive barrier ---------------------------------------------- *)

let test_adaptive_barrier_rounds () =
  let rounds = 5 and parties = 3 in
  let violations = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let b = Adaptive_barrier.create ~node:0 ~name:"b" parties in
        check_int "parties" parties (Adaptive_barrier.parties b);
        let hits = Array.make rounds 0 in
        let worker i () =
          for r = 0 to rounds - 1 do
            Cthread.work (1_000 * (i + 1));
            hits.(r) <- hits.(r) + 1;
            Adaptive_barrier.await b;
            (* Everyone must have arrived before anyone proceeds. *)
            if hits.(r) <> parties then incr violations
          done
        in
        let ts =
          List.init parties (fun i -> Cthread.fork ~proc:(1 + i) (worker i))
        in
        List.iter Cthread.join ts)
  in
  check_int "no early release" 0 !violations

let test_adaptive_barrier_budget_adapts () =
  let budget = ref 0 and adaptations = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        (* Thresholds wide open: any observed spread rewards spinning. *)
        let b =
          Adaptive_barrier.create ~node:0 ~name:"b"
            ~spin_if_under:50_000_000 ~block_if_over:100_000_000 3
        in
        check_int "starts blocking" 0 (Adaptive_barrier.spin_budget_ns b);
        let worker i () =
          for _ = 1 to 4 do
            Cthread.work (2_000 * (i + 1));
            Adaptive_barrier.await b
          done
        in
        let ts = List.init 3 (fun i -> Cthread.fork ~proc:(1 + i) (worker i)) in
        List.iter Cthread.join ts;
        budget := Adaptive_barrier.spin_budget_ns b;
        adaptations := Adaptive.adaptations (Adaptive_barrier.loop b);
        (* A huge spread fed directly must step the budget back down. *)
        ignore
          (Adaptive.feed (Adaptive_barrier.loop b)
             {
               Adaptive_barrier.spread_ns = 500_000_000;
               budget_ns = Adaptive_barrier.spin_budget_ns b;
             });
        check_bool "spin-less shrinks the budget" true
          (Adaptive_barrier.spin_budget_ns b < !budget))
  in
  check_bool "budget widened under tight spreads" true (!budget > 0);
  check_bool "cycles reconfigured" true (!adaptations > 0)

(* -- adaptive condition -------------------------------------------- *)

let test_adaptive_condition_no_lost_signal () =
  let produced = 6 in
  let consumed = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let mu = Spin.create ~node:0 () in
        let cv = Adaptive_condition.create ~node:0 ~name:"cv" () in
        let items = ref 0 in
        let consumer n () =
          for _ = 1 to n do
            Spin.lock mu;
            while !items = 0 do
              Adaptive_condition.wait cv mu
            done;
            decr items;
            incr consumed;
            Spin.unlock mu
          done
        in
        let c1 = Cthread.fork ~proc:1 (consumer (produced / 2)) in
        let c2 = Cthread.fork ~proc:2 (consumer (produced / 2)) in
        for _ = 1 to produced do
          Cthread.work 30_000;
          Spin.lock mu;
          incr items;
          Adaptive_condition.signal cv;
          Spin.unlock mu
        done;
        Cthread.join c1;
        Cthread.join c2)
  in
  check_int "every item consumed" produced !consumed

let test_adaptive_condition_broadcast_escalation () =
  let (_ : Sched.t) =
    run (fun () ->
        let cv = Adaptive_condition.create ~node:0 ~name:"cv" () in
        check_bool "starts in signal mode" false
          (Adaptive_condition.broadcasting cv);
        ignore
          (Adaptive.feed (Adaptive_condition.loop cv)
             { Adaptive_condition.waiting = 10; broadcast = false });
        check_bool "crowd escalates to broadcast" true
          (Adaptive_condition.broadcasting cv);
        ignore
          (Adaptive.feed (Adaptive_condition.loop cv)
             { Adaptive_condition.waiting = 0; broadcast = true });
        check_bool "scarcity de-escalates" false
          (Adaptive_condition.broadcasting cv))
  in
  ()

(* -- adaptive semaphore -------------------------------------------- *)

let test_adaptive_semaphore_respects_permits () =
  let max_inside = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let sem = Adaptive_semaphore.create ~node:0 ~name:"sem" 2 in
        let inside = ref 0 in
        let worker () =
          for _ = 1 to 3 do
            Adaptive_semaphore.acquire sem;
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Cthread.work 20_000;
            decr inside;
            Adaptive_semaphore.release sem;
            Cthread.work 5_000
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(1 + i) worker) in
        List.iter Cthread.join ts;
        check_int "permits restored" 2 (Adaptive_semaphore.available sem);
        check_bool "try_acquire takes a free permit" true
          (Adaptive_semaphore.try_acquire sem);
        check_bool "second permit too" true
          (Adaptive_semaphore.try_acquire sem);
        check_bool "third is refused" false
          (Adaptive_semaphore.try_acquire sem);
        Adaptive_semaphore.release sem;
        Adaptive_semaphore.release sem)
  in
  check_bool "both permits usable concurrently" true (!max_inside >= 2);
  check_bool "never above the permit count" true (!max_inside <= 2)

let test_adaptive_semaphore_budget_adapts () =
  let budget = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let sem = Adaptive_semaphore.create ~node:0 ~name:"sem" 1 in
        check_int "starts blocking" 0 (Adaptive_semaphore.spin_budget_ns sem);
        (* Releases that find no queue reward spinning. *)
        for _ = 1 to 8 do
          Adaptive_semaphore.acquire sem;
          Cthread.work 2_000;
          Adaptive_semaphore.release sem
        done;
        budget := Adaptive_semaphore.spin_budget_ns sem)
  in
  check_bool "uncontended turnover widens the budget" true (!budget > 0)

(* -- guarded policies ---------------------------------------------- *)

let decision_label = function
  | Policy.No_change -> "none"
  | Policy.Reconfigure { label; _ } -> label

let test_policy_guard_streaks () =
  let g = Policy.Guard.create ~pathological_limit:2 ~cooldown:3 () in
  check_bool "one bad observation is tolerated" false
    (Policy.Guard.note g ~pathological:true);
  check_int "streak counted" 1 (Policy.Guard.streak g);
  check_bool "streak limit orders fallback" true
    (Policy.Guard.note g ~pathological:true);
  check_int "fallback recorded" 1 (Policy.Guard.fallbacks g);
  (* Cooldown: the next pathological observations must not re-trigger. *)
  check_bool "cooldown suppresses" false (Policy.Guard.note g ~pathological:true);
  check_bool "still suppressed" false (Policy.Guard.note g ~pathological:true)

let test_policy_guarded_combinator () =
  let g = Policy.Guard.create ~pathological_limit:2 ~cooldown:2 () in
  let base obs =
    if obs = 100 then Policy.reconfigure ~label:"cap" (fun () -> ())
    else Policy.No_change
  in
  let p =
    Policy.guarded ~guard:g
      ~clamp:(fun obs -> (min obs 100, obs > 100))
      ~fallback:(fun _ -> Policy.reconfigure ~label:"reset" (fun () -> ()))
      base
  in
  (* First outlier: clamped, base policy sees the sanitized value. *)
  check_string "clamped to base" "cap" (decision_label (p 500));
  (* Second consecutive outlier: the guard hands control to fallback. *)
  check_string "streak falls back" "reset" (decision_label (p 500));
  check_int "one fallback" 1 (Policy.Guard.fallbacks g);
  (* Cooldown: outliers are still clamped but cannot re-trigger. *)
  check_string "cooldown clamps only" "cap" (decision_label (p 500));
  check_string "benign passes through" "none" (decision_label (p 7))

(* -- registry monitor thread --------------------------------------- *)

let test_monitor_thread_drives_registry () =
  let samples = ref 0 and processed = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        Registry.reset ();
        let counter = ref 0 in
        let sensor =
          Sensor.make ~name:"load" ~period:1 ~overhead_instrs:0 (fun () ->
              incr counter;
              !counter)
        in
        let loop =
          Adaptive.create ~name:"passive" ~home:0 ~sensor
            ~policy:Policy.no_op ()
        in
        let mt =
          Monitoring.Monitor_thread.start_registry ~proc:7
            ~poll_interval_ns:100_000 ()
        in
        Cthread.work 600_000;
        Monitoring.Monitor_thread.stop mt;
        samples := Adaptive.samples loop;
        processed := Monitoring.Monitor_thread.processed mt)
  in
  check_bool "monitor forced sense-decide cycles" true (!samples > 0);
  check_bool "processed counts driven objects" true (!processed >= !samples)

(* -- watchdog adaptation tracking ---------------------------------- *)

let test_watchdog_tracks_adaptations () =
  let sim = Sched.create cfg in
  let events = ref 0 and fired = ref true in
  Sched.run sim (fun () ->
      Registry.reset ();
      let early = always_adapt ~name:"early" () in
      let wd =
        Monitoring.Watchdog.start ~proc:7 ~poll_interval_ns:50_000
          ~track_adaptations:true ~sched:sim ()
      in
      (* Let the watchdog reach its subscription before the first
         event fires: a forked thread only becomes runnable after the
         machine's ~120 us wakeup latency. *)
      Cthread.work 400_000;
      ignore (Adaptive.feed early 0);
      Cthread.work 200_000;
      (* Objects registered after the watchdog started are picked up by
         its per-poll cursor. *)
      let late = always_adapt ~name:"late" () in
      Cthread.work 200_000;
      ignore (Adaptive.feed late 0);
      ignore (Adaptive.feed late 0);
      Cthread.work 200_000;
      Monitoring.Watchdog.stop wd;
      events := Monitoring.Watchdog.adaptation_events wd;
      fired := Monitoring.Watchdog.fired wd);
  check_int "all adaptation events observed" 3 !events;
  check_bool "healthy run never aborts" false !fired

(* -- trace annotations --------------------------------------------- *)

let test_trace_records_adaptations () =
  let sim = Sched.create cfg in
  let tr = Analysis.Trace.attach sim in
  Sched.run sim (fun () ->
      let loop = always_adapt ~name:"widget" ~kind:"gadget" ~label:"flip" () in
      ignore (Adaptive.feed loop 0));
  match Analysis.Trace.adaptations tr with
  | [ a ] ->
    check_string "object name" "widget" a.Analysis.Trace.ad_obj;
    check_string "object kind" "gadget" a.Analysis.Trace.ad_kind;
    check_string "transition label" "flip" a.Analysis.Trace.ad_label;
    check_bool "linearized position stamped" true (a.Analysis.Trace.ad_time >= 0)
  | l -> Alcotest.failf "expected one adaptation, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "registry enumerates" `Quick test_registry_enumerates_objects;
    Alcotest.test_case "registry cursor" `Quick test_registry_subscribe_from_cursor;
    Alcotest.test_case "registry drive_all" `Quick test_registry_drive_all;
    Alcotest.test_case "registry drive_all skips Not_owner" `Quick
      test_registry_drive_all_skips_not_owner;
    Alcotest.test_case "registry resets between runs" `Quick
      test_registry_resets_between_runs;
    Alcotest.test_case "registry json deterministic" `Quick
      test_registry_json_deterministic;
    Alcotest.test_case "sync-objects smoke" `Quick test_sync_objects_smoke;
    Alcotest.test_case "barrier rounds" `Quick test_adaptive_barrier_rounds;
    Alcotest.test_case "barrier budget adapts" `Quick
      test_adaptive_barrier_budget_adapts;
    Alcotest.test_case "condition no lost signal" `Quick
      test_adaptive_condition_no_lost_signal;
    Alcotest.test_case "condition broadcast escalation" `Quick
      test_adaptive_condition_broadcast_escalation;
    Alcotest.test_case "semaphore permits" `Quick
      test_adaptive_semaphore_respects_permits;
    Alcotest.test_case "semaphore budget adapts" `Quick
      test_adaptive_semaphore_budget_adapts;
    Alcotest.test_case "guard streaks" `Quick test_policy_guard_streaks;
    Alcotest.test_case "guarded combinator" `Quick test_policy_guarded_combinator;
    Alcotest.test_case "monitor drives registry" `Quick
      test_monitor_thread_drives_registry;
    Alcotest.test_case "watchdog tracks adaptations" `Quick
      test_watchdog_tracks_adaptations;
    Alcotest.test_case "trace adaptations" `Quick test_trace_records_adaptations;
  ]
