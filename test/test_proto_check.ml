(* Proto_check: the explicit-state protocol model checker. Shipped
   protocol models verify clean; each seeded-bad variant produces a
   counterexample for exactly its expected properties; counterexamples
   replay on their own model; checker output is byte-identical at any
   domain count; random walks of the model replay (model
   well-formedness); and an instrumented real [Switch_lock] swap's
   transition log replays through the quiescence model step for step
   (conformance: the model moves like the implementation). *)

open Butterfly
open Cthreads
module P = Analysis.Proto_check
module PM = Locks.Proto_models
module SL = Locks.Switch_lock

let small_quiescence () = PM.quiescence ~waiters:[ PM.Wsleep; PM.Wtimed ] ()
let small_models () = [ small_quiescence (); PM.mcs ~contenders:2 (); PM.guard () ]

(* -- shipped protocols verify clean at their checked sizes -- *)

let test_shipped_clean () =
  let reports = P.check_all (PM.shipped ()) in
  Alcotest.(check bool) "every property holds" true (P.clean reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.P.r_model ^ "/" ^ r.P.r_property ^ ": explored states")
        true (r.P.r_states > 0))
    reports;
  (* Same model, same exploration: state/edge counts agree across its
     properties. *)
  let quiesce =
    List.filter (fun r -> r.P.r_model = "quiescence-swap") reports
  in
  Alcotest.(check int) "five quiescence properties" 5 (List.length quiesce);
  let st = (List.hd quiesce).P.r_states in
  List.iter
    (fun r -> Alcotest.(check int) "state count agrees" st r.P.r_states)
    quiesce

(* -- every seeded historical bug is caught, with exactly the expected
   property set -- *)

let test_fixtures_detected () =
  let fixtures =
    List.map
      (fun (name, model, expect) -> P.check_fixture ~name ~expect model)
      (PM.seeded_bad ())
  in
  Alcotest.(check int) "four fixtures" 4 (List.length fixtures);
  Alcotest.(check bool) "all detected" true (P.fixtures_ok fixtures);
  List.iter
    (fun f ->
      Alcotest.(check (list string))
        (f.P.f_name ^ ": exactly the expected violations")
        (List.sort compare f.P.f_expect)
        (List.sort compare f.P.f_found))
    fixtures

(* -- a counterexample is a real trace: it replays on its model -- *)

let test_counterexample_replays () =
  List.iter
    (fun (name, ((model, _) as mp), expect) ->
      let f = P.check_fixture ~name ~expect mp in
      let replayed = ref 0 in
      List.iter
        (fun r ->
          match r.P.r_verdict with
          | P.Violated x ->
            (match P.replay model x.P.x_steps with
            | Ok () -> incr replayed
            | Error e -> Alcotest.fail (name ^ "/" ^ r.P.r_property ^ ": " ^ e))
          | _ -> ())
        f.P.f_reports;
      Alcotest.(check bool) (name ^ ": some counterexample replayed") true (!replayed > 0))
    (PM.seeded_bad ())

(* -- byte-identical output at any domain count -- *)

let test_deterministic_across_domains () =
  let run domains =
    let shipped = P.check_all ~domains (small_models ()) in
    let fixtures =
      List.map
        (fun (name, model, expect) -> P.check_fixture ~name ~expect model)
        (PM.seeded_bad ())
    in
    P.to_json ~shipped ~fixtures ~lowered:[]
  in
  Alcotest.(check string) "domains 1 = domains 4" (run 1) (run 4)

(* -- model well-formedness: random walks stay safe and replay -- *)

let test_random_walks_replay () =
  List.iter
    (fun (model, props) ->
      for seed = 1 to 10 do
        (match P.walk_violates model props ~seed ~steps:300 with
        | None -> ()
        | Some why ->
          Alcotest.fail
            (Printf.sprintf "seed %d violates %s" seed why));
        let trace, _ = P.random_walk model ~seed ~steps:300 in
        match P.replay model trace with
        | Ok () -> ()
        | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
      done)
    (small_models ())

(* -- conformance: an instrumented real Switch_lock swap produces a
   transition log the quiescence model accepts step for step. One
   swapper, two sleeping waiters, blocking -> TAS — the same shape as
   [PM.quiescence ~waiters:[Wsleep; Wsleep]]. -- *)

let test_conformance_real_swap_log () =
  let log = ref [] in
  let cfg = { Config.default with Config.processors = 8 } in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      (* repeats so high the feedback loop never swaps on its own: the
         only protocol traffic in the log is ours. *)
      let params = { SL.default_params with SL.repeats = 1_000_000 } in
      let lk = SL.create ~initial:SL.Blocking ~params ~home:0 () in
      SL.set_transition_probe lk
        (Some (fun tid label -> log := (tid, label) :: !log));
      SL.lock lk;
      let waiters =
        List.init 2 (fun i ->
            Cthread.fork ~proc:(1 + i) (fun () ->
                Cthread.delay ((i + 1) * 30_000);
                SL.lock lk;
                Cthread.work 10_000;
                SL.unlock lk))
      in
      while SL.waiting_now lk < 2 do
        Cthread.delay 10_000
      done;
      (* Long enough for both registered waiters to actually park. *)
      Cthread.delay 200_000;
      Alcotest.(check bool) "swap committed" true (SL.swap_to lk SL.Tas);
      SL.unlock lk;
      Cthread.join_all waiters);
  let events = List.rev !log in
  (* Canonicalize tids to model roles: the swapper is whoever froze,
     the waiters are named in registration order. *)
  let swapper =
    match List.find_opt (fun (_, l) -> l = "freeze") events with
    | Some (tid, _) -> tid
    | None -> Alcotest.fail "no freeze in the log"
  in
  let waiters =
    List.filteri (fun i _ -> i < 2)
      (List.filter_map
         (fun (tid, l) -> if l = "register" then Some tid else None)
         events)
  in
  let role tid =
    if tid = swapper then Some "swapper"
    else
      match List.find_index (fun t -> t = tid) waiters with
      | Some i -> Some (Printf.sprintf "w%d" (i + 1))
      | None -> None
  in
  (* The model starts with the swapper already holding the lock, so its
     initial acquisition is not a model step. *)
  let steps =
    List.filter_map (fun (tid, l) -> Option.map (fun r -> (r, l)) (role tid)) events
  in
  let steps =
    match steps with ("swapper", "acquire") :: rest -> rest | s -> s
  in
  let model, _ = PM.quiescence ~waiters:[ PM.Wsleep; PM.Wsleep ] () in
  Alcotest.(check bool) "log has protocol steps" true (List.length steps > 8);
  match P.replay model steps with
  | Ok () -> ()
  | Error e ->
    Alcotest.fail
      (Printf.sprintf "implementation log diverges from the model: %s\nlog: %s" e
         (String.concat " " (List.map (fun (r, l) -> r ^ ":" ^ l) steps)))

(* -- lowering: the model counterexamples with a simulator workload
   arrive Confirmed with a bit-for-bit witness replay -- *)

let test_lowerings_confirmed () =
  let ls = Analysis_suite.proto_lowerings () in
  Alcotest.(check int) "two lowered counterexamples" 2 (List.length ls);
  List.iter
    (fun l ->
      Alcotest.(check bool) (l.P.l_fixture ^ ": confirmed") true l.P.l_confirmed;
      Alcotest.(check bool) (l.P.l_fixture ^ ": replayed bit-for-bit") true
        l.P.l_replay_ok;
      Alcotest.(check bool) (l.P.l_fixture ^ ": non-empty schedule") true
        (l.P.l_schedule_len > 0))
    ls

let suite =
  [
    Alcotest.test_case "shipped protocols verify clean" `Slow test_shipped_clean;
    Alcotest.test_case "seeded bugs all caught" `Quick test_fixtures_detected;
    Alcotest.test_case "counterexamples replay on the model" `Quick
      test_counterexample_replays;
    Alcotest.test_case "byte-identical across domains" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "random walks stay safe and replay" `Quick
      test_random_walks_replay;
    Alcotest.test_case "real swap log conforms to the model" `Quick
      test_conformance_real_swap_log;
    Alcotest.test_case "counterexamples lower to confirmed witnesses" `Slow
      test_lowerings_confirmed;
  ]
