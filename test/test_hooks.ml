(* Instrumentation buses and their zero-subscriber fast paths: every
   hook stream supports multiple observers, clearing, and — crucially
   for the simulator's hot paths — costs (almost) nothing when nobody
   listens. *)

open Butterfly

let base_cfg = { Config.default with Config.processors = 4 }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_hook_counts_and_clear () =
  let sim = Sched.create base_cfg in
  check_int "no event hooks" 0 (Sched.event_hook_count sim);
  check_int "no access hooks" 0 (Sched.access_hook_count sim);
  check_int "no annot hooks" 0 (Sched.annot_hook_count sim);
  check_int "no trace hooks" 0 (Sched.trace_hook_count sim);
  Sched.add_event_hook sim (fun _ -> ());
  Sched.add_event_hook sim (fun _ -> ());
  check_int "event bus accepts several subscribers" 2 (Sched.event_hook_count sim);
  Sched.clear_event_hooks sim;
  check_int "cleared" 0 (Sched.event_hook_count sim);
  Sched.add_annot_hook sim (fun _ -> ());
  Sched.clear_annot_hooks sim;
  check_int "annot cleared" 0 (Sched.annot_hook_count sim);
  Sched.add_access_hook sim (fun _ -> ());
  Sched.clear_access_hooks sim;
  check_int "access cleared" 0 (Sched.access_hook_count sim);
  Sched.add_trace_hook sim (fun ~time:_ ~tid:_ _ -> ());
  Sched.add_trace_hook sim (fun ~time:_ ~tid:_ _ -> ());
  check_int "trace bus" 2 (Sched.trace_hook_count sim);
  Sched.clear_trace_hooks sim;
  check_int "trace cleared" 0 (Sched.trace_hook_count sim)

(* The single remaining pin on the deprecated [set_*_hook] aliases:
   despite the historical names they append to the bus, never replace. *)
let test_deprecated_set_aliases_append () =
  let sim = Sched.create base_cfg in
  Sched.add_event_hook sim (fun _ -> ());
  (Sched.set_event_hook [@alert "-deprecated"]) sim (fun _ -> ());
  check_int "set_event_hook appends" 2 (Sched.event_hook_count sim);
  Sched.add_trace_hook sim (fun ~time:_ ~tid:_ _ -> ());
  (Sched.set_trace_hook [@alert "-deprecated"]) sim (fun ~time:_ ~tid:_ _ -> ());
  check_int "set_trace_hook appends" 2 (Sched.trace_hook_count sim)

let test_event_bus_multiple_observers () =
  let sim = Sched.create base_cfg in
  let a = ref 0 and b = ref 0 in
  Sched.add_event_hook sim (fun _ -> incr a);
  Sched.add_event_hook sim (fun _ -> incr b);
  Sched.run sim (fun () ->
      let t = Cthreads.Cthread.fork ~proc:1 (fun () -> Ops.work 10_000) in
      Cthreads.Cthread.join t);
  check_bool "events fired" true (!a > 0);
  check_int "both observers saw every event" !a !b

let test_trace_bus_multiple_sinks () =
  let sim = Sched.create base_cfg in
  let a = ref [] and b = ref 0 in
  Sched.add_trace_hook sim (fun ~time:_ ~tid:_ msg -> a := msg :: !a);
  Sched.add_trace_hook sim (fun ~time:_ ~tid:_ _ -> incr b);
  Sched.run sim (fun () ->
      Ops.trace "one";
      Ops.trace "two");
  Alcotest.(check (list string)) "messages in order" [ "one"; "two" ] (List.rev !a);
  check_int "second sink saw both" 2 !b

let test_annotations_enabled_follows_subscribers () =
  (* Without annot hooks the run must leave the fast-path flag off;
     with one, annotations must be delivered. *)
  let observed_off = ref true in
  let sim = Sched.create base_cfg in
  Sched.run sim (fun () -> observed_off := not (Ops.annotations_enabled ()));
  check_bool "flag off with zero subscribers" true !observed_off;
  let seen = ref 0 and observed_on = ref false in
  let sim = Sched.create base_cfg in
  Sched.add_annot_hook sim (fun _ -> incr seen);
  Sched.run sim (fun () ->
      observed_on := Ops.annotations_enabled ();
      let w = Ops.alloc1 () in
      Ops.mark_relaxed_word w);
  check_bool "flag on with a subscriber" true !observed_on;
  check_int "annotation delivered" 1 !seen

let test_zero_subscriber_annotate_allocates_nothing () =
  (* The .mli promises ~zero cost with no annotation subscriber: the
     effect (whose continuation capture would allocate ~100 bytes per
     call) must not even be performed. 1000 calls staying under 512
     bytes of new allocation proves the guard short-circuits. *)
  let delta = ref infinity in
  let sim = Sched.create base_cfg in
  Sched.run sim (fun () ->
      let w = Ops.alloc1 () in
      let annotation = Ops.A_sync_word w in
      let before = Gc.allocated_bytes () in
      for _ = 1 to 1_000 do
        Ops.annotate annotation
      done;
      let after = Gc.allocated_bytes () in
      delta := after -. before);
  check_bool
    (Printf.sprintf "allocated %.0f bytes for 1000 unobserved annotations" !delta)
    true (!delta < 512.0)

let test_default_thread_names_are_per_machine () =
  (* Machine-assigned default names restart per machine (tid-derived),
     so they cannot drift with global process history. *)
  let names_of () =
    let names = ref [] in
    let sim = Sched.create base_cfg in
    Sched.run sim (fun () ->
        let ts =
          List.init 3 (fun _ ->
              Cthreads.Cthread.fork (fun () ->
                  Cthreads.Cthread.work 1_000))
        in
        List.iter
          (fun t -> names := Ops.thread_name (Cthreads.Cthread.id t) :: !names)
          ts;
        Cthreads.Cthread.join_all ts);
    List.rev !names
  in
  let first = names_of () in
  let second = names_of () in
  Alcotest.(check (list string))
    "fresh machine, same default names"
    [ "thread-1"; "thread-2"; "thread-3" ]
    first;
  Alcotest.(check (list string)) "second machine identical" first second

let suite =
  [
    Alcotest.test_case "hook counts and clear" `Quick test_hook_counts_and_clear;
    Alcotest.test_case "deprecated set aliases append" `Quick
      test_deprecated_set_aliases_append;
    Alcotest.test_case "event bus fan-out" `Quick test_event_bus_multiple_observers;
    Alcotest.test_case "trace bus fan-out" `Quick test_trace_bus_multiple_sinks;
    Alcotest.test_case "annotations flag tracks subscribers" `Quick
      test_annotations_enabled_follows_subscribers;
    Alcotest.test_case "zero-subscriber annotate allocates nothing" `Quick
      test_zero_subscriber_annotate_allocates_nothing;
    Alcotest.test_case "per-machine default thread names" `Quick
      test_default_thread_names_are_per_machine;
  ]
