(* Switch_lock: the implementation-as-attribute lock. Mutual exclusion
   under every fixed implementation and under adaptation, the fail-safe
   swap protocol (FIFO-preserving migration, rollback on a killed
   participant, abandoned-swap recovery), timed waiters across swap
   windows, the guardrail fallback-failure regression, and the
   swap-window fault kinds end to end. *)

open Butterfly
open Cthreads
module SL = Locks.Switch_lock
module Spec = Adaptive_core.Policy.Spec

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

(* -- mutual exclusion, every variant -- *)

let hammer ?fixed ?(nthreads = 6) ?(iters = 20) ?(cs_ns = 5_000) () =
  let counter = ref 0 and inside = ref 0 and overlap = ref 0 in
  let epoch = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ?fixed ~home:0 () in
        let body () =
          for _ = 1 to iters do
            SL.lock lk;
            incr inside;
            if !inside > !overlap then overlap := !inside;
            let v = !counter in
            Cthread.work cs_ns;
            counter := v + 1;
            decr inside;
            SL.unlock lk
          done
        in
        let ts = List.init nthreads (fun i -> Cthread.fork ~proc:(1 + (i mod 7)) body) in
        Cthread.join_all ts;
        epoch := SL.epoch lk)
  in
  (!counter, !overlap, !epoch)

let check_mutex name fixed () =
  let total, overlap, _ = hammer ?fixed () in
  Alcotest.(check int) (name ^ ": no lost updates") (6 * 20) total;
  Alcotest.(check int) (name ^ ": never two inside") 1 overlap

(* -- the ladder adapts: queue under pressure, blocking under long holds -- *)

let test_adapts_to_queue_under_contention () =
  let total, overlap, epoch = hammer ~nthreads:6 ~iters:30 ~cs_ns:20_000 () in
  Alcotest.(check int) "no lost updates" (6 * 30) total;
  Alcotest.(check int) "never two inside" 1 overlap;
  Alcotest.(check bool) "at least one committed swap" true (epoch >= 1)

let test_adapts_to_blocking_under_long_holds () =
  let blocks = ref 0 and epoch = ref 0 and saw_blocking = ref false in
  let counter = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ~home:0 () in
        let body () =
          for _ = 1 to 12 do
            SL.lock lk;
            if SL.current_impl lk = SL.Blocking then saw_blocking := true;
            let v = !counter in
            Cthread.work 600_000;
            counter := v + 1;
            SL.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(1 + i) body) in
        Cthread.join_all ts;
        blocks := Locks.Lock_stats.blocks (SL.stats lk);
        epoch := SL.epoch lk)
  in
  Alcotest.(check int) "no lost updates" (4 * 12) !counter;
  Alcotest.(check bool) "swapped at least once" true (!epoch >= 1);
  Alcotest.(check bool) "reached the blocking implementation" true !saw_blocking;
  Alcotest.(check bool) "waiters actually slept" true (!blocks > 0)

(* -- migration preserves queued FIFO order across a swap -- *)

let test_fifo_preserved_across_swap () =
  let order = ref [] and committed = ref false in
  let epoch = ref 0 and rollbacks = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ~initial:SL.Mcs ~home:0 () in
        let holder =
          Cthread.fork ~proc:7 (fun () ->
              SL.lock lk;
              (* Hold until all four waiters are registered, then swap
                 with the full queue present: they are kicked, re-arm,
                 and re-enter with their original tickets. *)
                while SL.waiting_now lk < 4 do
                  Cthread.delay 10_000
                done;
              Cthread.delay 100_000;
              committed := SL.swap_to lk SL.Blocking;
              Cthread.work 50_000;
              SL.unlock lk)
        in
        let waiters =
          List.init 4 (fun i ->
              Cthread.fork ~proc:(1 + i) (fun () ->
                  (* Staggered arrival: registration order is the
                     index order (fork order alone staggers starts;
                     the growing delay keeps the margin wide). *)
                  Cthread.delay ((i + 1) * 60_000);
                  SL.lock lk;
                  order := i :: !order;
                  Cthread.work 10_000;
                  SL.unlock lk))
        in
        Cthread.join holder;
        Cthread.join_all waiters;
        epoch := SL.epoch lk;
        rollbacks := SL.swap_rollbacks lk)
  in
  Alcotest.(check bool) "swap committed" true !committed;
  Alcotest.(check (list int)) "grants in ticket order" [ 0; 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "one committed swap" 1 !epoch;
  Alcotest.(check int) "no rollbacks" 0 !rollbacks

(* -- a waiter killed mid-drain must roll the swap back, not wedge it -- *)

let test_killed_waiter_rolls_swap_back () =
  let swap_result = ref true and survivor_done = ref false in
  let epoch = ref 0 and rollbacks = ref 0 and final_impl = ref SL.Mcs in
  let go_swap = ref false in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      let lk = SL.create ~initial:SL.Tas ~home:0 () in
      let holder =
        Cthread.fork ~proc:7 (fun () ->
            SL.lock lk;
            while not !go_swap do
              Cthread.delay 10_000
            done;
            (* The dead waiter can never acknowledge its kick: the
               drain must hit its deadline and roll back. *)
            swap_result := SL.swap_to lk SL.Mcs;
            SL.unlock lk)
      in
      let victim =
        Cthread.fork ~proc:1 (fun () ->
            SL.lock lk;
            SL.unlock lk)
      in
      let survivor =
        Cthread.fork ~proc:2 (fun () ->
            SL.lock lk;
            survivor_done := true;
            SL.unlock lk)
      in
      (* Wait until both waiters are registered behind the holder,
         then crash the victim while it waits, then let the holder
         open its swap window against a queue with a corpse in it. *)
      while SL.waiting_now lk < 2 do
        Cthread.delay 10_000
      done;
      Cthread.delay 100_000;
      ignore (Sched.kill_thread sim ~tid:(Cthread.id victim) ~at:(Cthread.now ()));
      go_swap := true;
      Cthread.join holder;
      Cthread.join victim;
      Cthread.join survivor;
      epoch := SL.epoch lk;
      rollbacks := SL.swap_rollbacks lk;
      final_impl := SL.current_impl lk);
  Alcotest.(check bool) "swap reported rollback" false !swap_result;
  Alcotest.(check int) "rollback counted" 1 !rollbacks;
  Alcotest.(check int) "no committed swap" 0 !epoch;
  Alcotest.(check bool) "implementation unchanged" true (!final_impl = SL.Tas);
  Alcotest.(check bool) "surviving waiter still acquired" true !survivor_done

(* -- a swapper killed mid-swap leaves a freeze the waiters age out -- *)

let test_abandoned_swap_recovery () =
  let timed_result = ref true in
  let recoveries = ref 0 and rollbacks = ref 0 and epoch = ref 0 and timeouts = ref 0 in
  let go_swap = ref false and go_late = ref false in
  let sim = Sched.create cfg in
  Sched.run sim (fun () ->
      let lk = SL.create ~initial:SL.Tas ~home:0 () in
      let holder =
        Cthread.fork ~proc:7 (fun () ->
            SL.lock lk;
            while not !go_swap do
              Cthread.delay 10_000
            done;
            (* Never returns: killed mid-drain, freeze left set. *)
            ignore (SL.swap_to lk SL.Mcs);
            SL.unlock lk)
      in
      let victim =
        Cthread.fork ~proc:1 (fun () ->
            SL.lock lk;
            SL.unlock lk)
      in
      let late =
        Cthread.fork ~proc:2 (fun () ->
            while not !go_late do
              Cthread.delay 10_000
            done;
            (* Arrives frozen; must clear the abandoned freeze, then
               (the word is stranded by the dead holder) expire. *)
            timed_result := SL.lock_timeout lk ~deadline_ns:(Cthread.now () + 6_000_000))
      in
      (* The registered waiter dies first (so the drain can never
         finish), then the swapper dies inside its own window. *)
      while SL.waiting_now lk < 1 do
        Cthread.delay 10_000
      done;
      Cthread.delay 100_000;
      ignore (Sched.kill_thread sim ~tid:(Cthread.id victim) ~at:(Cthread.now ()));
      go_swap := true;
      Cthread.delay 300_000;
      ignore (Sched.kill_thread sim ~tid:(Cthread.id holder) ~at:(Cthread.now ()));
      go_late := true;
      Cthread.join holder;
      Cthread.join victim;
      Cthread.join late;
      recoveries := SL.abandoned_recoveries lk;
      rollbacks := SL.swap_rollbacks lk;
      epoch := SL.epoch lk;
      timeouts := Locks.Lock_stats.timeouts (SL.stats lk));
  Alcotest.(check bool) "timed waiter expired" false !timed_result;
  Alcotest.(check int) "freeze recovered once" 1 !recoveries;
  Alcotest.(check int) "nobody committed" 0 !epoch;
  Alcotest.(check int) "nobody rolled back (the swapper died)" 0 !rollbacks;
  Alcotest.(check int) "timeout counted" 1 !timeouts

(* -- a swapper stalled past deadline+grace after its kick must not
   commit over the waiters' abandoned-swap recovery: by the time it
   resumes, every ack is in but the waiters have aged the freeze out
   and re-parked under the old implementation — flipping anyway would
   strand the sleeper behind a release that never wakes it -- *)

let swap_begin_label label =
  String.length label >= 10 && String.sub label 0 10 = "swap-begin"

let test_stalled_swapper_commit_revalidates () =
  let params =
    { SL.default_params with SL.swap_timeout_ns = 600_000; swap_grace_ns = 200_000 }
  in
  let swap_result = ref true and victim_done = ref false in
  let epoch = ref (-1) and rollbacks = ref 0 and recoveries = ref 0 in
  let final_impl = ref SL.Tas in
  let sim = Sched.create cfg in
  (* A penalty cannot build this interleaving: [penalize_thread] only
     inflates the thread's clock at its next dispatch — the dispatch
     itself still happens at the pre-penalty queue position, so a
     "stalled" swapper would sample [ack] before the victim's kicked
     wakeup ever runs. Descheduling is a dispatch-ORDER property, so
     steer dispatch directly: once the kick is over, the chooser
     starves the swapper whenever any other thread is runnable. The
     kicked victim then acks, polls the freeze out to deadline+grace,
     recovers it, and re-parks — all strictly inside the swapper's
     starved window — so the swapper resumes to a fully-acked drain
     whose freeze is already gone. *)
  let swapper_tid = ref (-1) in
  let hold = ref false in
  Sched.add_annot_hook sim (fun a ->
      match a.Sched.annotation with
      | Ops.A_adaptation { kind = "lock-impl"; label; _ } when swap_begin_label label ->
        swapper_tid := a.Sched.annot_tid;
        (* The kick's wakeup and guard traffic cost ~200 µs; the kicked
           victim redispatches ~310 µs in. Start starving between the
           two, while the swapper is alone in its drain loop. *)
        Sched.add_timer sim ~at:(a.Sched.annot_time + 250_000) (fun () -> hold := true)
      | _ -> ());
  Sched.set_dispatch_chooser sim
    (Some
       (fun choices ->
         if not !hold then -1
         else begin
           let pick = ref (-1) in
           Array.iter
             (fun c ->
               if c.Sched.choice_tid <> !swapper_tid && !pick = -1 then
                 pick := c.Sched.choice_tid)
             choices;
           (* Only the swapper runnable: let the default policy run it. *)
           !pick
         end));
  Sched.run sim (fun () ->
      let lk = SL.create ~initial:SL.Blocking ~params ~home:0 () in
      let swapper =
        Cthread.fork ~name:"swapper" ~proc:7 (fun () ->
            SL.lock lk;
            while SL.waiting_now lk < 1 do
              Cthread.delay 10_000
            done;
            (* Long enough for the registered victim to actually park. *)
            Cthread.delay 150_000;
            swap_result := SL.swap_to lk SL.Tas;
            SL.unlock lk)
      in
      let victim =
        Cthread.fork ~name:"victim" ~proc:1 (fun () ->
            SL.lock lk;
            victim_done := true;
            SL.unlock lk)
      in
      Cthread.join swapper;
      Cthread.join victim;
      epoch := SL.epoch lk;
      rollbacks := SL.swap_rollbacks lk;
      recoveries := SL.abandoned_recoveries lk;
      final_impl := SL.current_impl lk);
  Alcotest.(check bool) "swap reported rollback" false !swap_result;
  Alcotest.(check int) "no committed swap" 0 !epoch;
  Alcotest.(check bool) "implementation unchanged" true (!final_impl = SL.Blocking);
  Alcotest.(check int) "rollback counted" 1 !rollbacks;
  Alcotest.(check int) "freeze recovered by the waiter" 1 !recoveries;
  Alcotest.(check bool) "re-parked victim still acquired" true !victim_done

(* -- a timed waiter whose deadline fires INSIDE the grace window of an
   abandoned swap must withdraw without recovering the freeze (now is
   not yet past deadline+grace, so the swapper may still be alive), and
   the recovery then falls to the next arrival. The interleaving is
   steered like the stalled-swapper test: starve the swapper from just
   after its kick, so the kicked timed waiter acks, polls the frozen
   ctl, and expires strictly inside the grace window; a rescuer thread
   then ages the freeze out, and the released swapper finds its freeze
   stolen and rolls back. -- *)

let test_timed_expiry_races_abandoned_recovery () =
  let params =
    { SL.default_params with SL.swap_timeout_ns = 600_000; swap_grace_ns = 200_000 }
  in
  let swap_result = ref true and timed_result = ref true in
  let rescuer_done = ref false in
  let epoch = ref (-1) and rollbacks = ref 0 and recoveries = ref 0 in
  let timeouts = ref 0 and final_impl = ref SL.Tas in
  let freeze_at = ref (-1) and timed_out_at = ref (-1) in
  let probe_log = ref [] in
  let sim = Sched.create cfg in
  let swapper_tid = ref (-1) in
  let hold = ref false in
  Sched.add_annot_hook sim (fun a ->
      match a.Sched.annotation with
      | Ops.A_adaptation { kind = "lock-impl"; label; _ } when swap_begin_label label ->
        swapper_tid := a.Sched.annot_tid;
        freeze_at := a.Sched.annot_time
      | Ops.A_adaptation { kind = "lock-impl"; label = "swap-abandoned-recovery"; _ } ->
        (* The rescuer has aged the freeze out: let the swapper resume
           and discover the theft. *)
        hold := false
      | _ -> ());
  Sched.set_dispatch_chooser sim
    (Some
       (fun choices ->
         if not !hold then -1
         else begin
           let pick = ref (-1) in
           Array.iter
             (fun c ->
               if c.Sched.choice_tid <> !swapper_tid && !pick = -1 then
                 pick := c.Sched.choice_tid)
             choices;
           !pick
         end));
  let go_rescue = ref false in
  Sched.run sim (fun () ->
      let lk = SL.create ~initial:SL.Blocking ~params ~home:0 () in
      (* The probe doubles as the steering trigger: the timed waiter's
         kick acknowledgment is the exact point after which the
         swapper must not run again until the freeze is recovered —
         the emission is synchronous, so the hold is in place before
         the swapper's next drain sample can be dispatched. *)
      SL.set_transition_probe lk
        (Some
           (fun tid label ->
             probe_log := (tid, label) :: !probe_log;
             if label = "ack" then hold := true));
      let swapper =
        Cthread.fork ~name:"swapper" ~proc:7 (fun () ->
            SL.lock lk;
            while SL.waiting_now lk < 1 do
              Cthread.delay 10_000
            done;
            Cthread.delay 150_000;
            swap_result := SL.swap_to lk SL.Tas;
            SL.unlock lk)
      in
      let timed =
        Cthread.fork ~name:"timed" ~proc:1 (fun () ->
            (* The deadline lands between the swapper's drain deadline
               and deadline+grace: the waiter is kicked, acks, and then
               expires while the abandoned freeze is still inside its
               grace period. *)
            timed_result :=
              SL.lock_timeout lk ~deadline_ns:(Cthread.now () + 880_000);
            timed_out_at := Cthread.now ())
      in
      let rescuer =
        Cthread.fork ~name:"rescuer" ~proc:2 (fun () ->
            while not !go_rescue do
              Cthread.delay 10_000
            done;
            SL.lock lk;
            rescuer_done := true;
            SL.unlock lk)
      in
      Cthread.join timed;
      go_rescue := true;
      Cthread.join swapper;
      Cthread.join rescuer;
      epoch := SL.epoch lk;
      rollbacks := SL.swap_rollbacks lk;
      recoveries := SL.abandoned_recoveries lk;
      timeouts := Locks.Lock_stats.timeouts (SL.stats lk);
      final_impl := SL.current_impl lk);
  Alcotest.(check bool) "timed waiter expired" false !timed_result;
  (* The expiry really fell inside the grace window: past the drain
     deadline, short of deadline+grace. *)
  Alcotest.(check bool) "timeout after the drain deadline" true
    (!timed_out_at > !freeze_at + params.SL.swap_timeout_ns);
  Alcotest.(check bool) "timeout inside the grace window" true
    (!timed_out_at < !freeze_at + params.SL.swap_timeout_ns + params.SL.swap_grace_ns);
  (* The timed waiter withdrew without recovering; the rescuer did. *)
  let events = List.rev !probe_log in
  let index l = Option.get (List.find_index (fun (_, x) -> x = l) events) in
  Alcotest.(check bool) "timeout precedes recovery" true
    (index "timeout" < index "recover");
  Alcotest.(check bool) "recovery not by the timed waiter" true
    (fst (List.nth events (index "recover")) <> fst (List.nth events (index "timeout")));
  Alcotest.(check int) "freeze recovered once" 1 !recoveries;
  Alcotest.(check int) "timeout counted" 1 !timeouts;
  Alcotest.(check bool) "swap reported rollback" false !swap_result;
  Alcotest.(check int) "no committed swap" 0 !epoch;
  Alcotest.(check int) "rollback counted" 1 !rollbacks;
  Alcotest.(check bool) "implementation unchanged" true (!final_impl = SL.Blocking);
  Alcotest.(check bool) "rescuer still acquired" true !rescuer_done

(* -- a pinned variant must stay pinned: the public swap API refuses -- *)

let test_pinned_lock_rejects_swap () =
  let raised = ref false and set_raised = ref false and final_impl = ref SL.Mcs in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ~fixed:SL.Tas ~home:0 () in
        SL.lock lk;
        (try ignore (SL.swap_to lk SL.Mcs) with Locks.Lock_core.Misuse _ -> raised := true);
        SL.unlock lk;
        (try ignore (SL.set_impl lk SL.Blocking)
         with Locks.Lock_core.Misuse _ -> set_raised := true);
        (* set_impl must release on the way out: a plain acquisition
           still succeeds afterwards. *)
        SL.lock lk;
        SL.unlock lk;
        final_impl := SL.current_impl lk)
  in
  Alcotest.(check bool) "swap_to refused" true !raised;
  Alcotest.(check bool) "set_impl refused" true !set_raised;
  Alcotest.(check bool) "implementation unchanged" true (!final_impl = SL.Tas)

(* -- timed waiters: expiry while queued, grant within deadline -- *)

let test_lock_timeout_semantics () =
  let expired = ref true and granted = ref false and waiting_after = ref (-1) in
  let timeouts = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ~fixed:SL.Tas ~home:0 () in
        let holder =
          Cthread.fork ~proc:7 (fun () ->
              SL.lock lk;
              Cthread.work 600_000;
              SL.unlock lk)
        in
        let impatient =
          Cthread.fork ~proc:1 (fun () ->
              Cthread.delay 50_000;
              expired := SL.lock_timeout lk ~deadline_ns:200_000)
        in
        Cthread.join impatient;
        waiting_after := SL.waiting_now lk;
        let patient =
          Cthread.fork ~proc:2 (fun () ->
              granted := SL.lock_timeout lk ~deadline_ns:5_000_000;
              if !granted then SL.unlock lk)
        in
        Cthread.join holder;
        Cthread.join patient;
        timeouts := Locks.Lock_stats.timeouts (SL.stats lk))
  in
  Alcotest.(check bool) "impatient waiter expired" false !expired;
  Alcotest.(check int) "registration withdrawn on expiry" 0 !waiting_after;
  Alcotest.(check bool) "patient waiter granted" true !granted;
  Alcotest.(check int) "exactly one timeout" 1 !timeouts

(* -- determinism and the swap-free A/B guarantee -- *)

let adaptive_run () =
  let counter = ref 0 in
  let epoch = ref 0 in
  let sim =
    run (fun () ->
        let lk = SL.create ~home:0 () in
        let body () =
          for _ = 1 to 10 do
            SL.lock lk;
            incr counter;
            Cthread.work 20_000;
            SL.unlock lk
          done
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(1 + i) body) in
        Cthread.join_all ts;
        epoch := SL.epoch lk)
  in
  (Sched.final_time sim, !epoch, !counter)

let test_deterministic_replay () =
  let a = adaptive_run () and b = adaptive_run () in
  Alcotest.(check bool) "identical runs, identical clocks" true (a = b)

let test_swap_free_run_stays_swap_free () =
  (* An uncontended workload never crosses a ladder threshold: the
     adaptive lock performs zero swaps and zero adaptations — the
     A/B guarantee that compiling the swap machinery in changes
     nothing until a swap actually fires. *)
  let epoch = ref (-1) and adaptations = ref (-1) in
  let (_ : Sched.t) =
    run (fun () ->
        let lk = SL.create ~home:0 () in
        for _ = 1 to 8 do
          SL.lock lk;
          Cthread.work 10_000;
          SL.unlock lk
        done;
        epoch := SL.epoch lk;
        adaptations := SL.adaptations lk)
  in
  Alcotest.(check int) "no committed swap" 0 !epoch;
  Alcotest.(check int) "no adaptation" 0 !adaptations

(* -- the declarative ladder is well formed and guard-consistent -- *)

let test_policy_spec_validates () =
  let spec = SL.policy_spec () in
  Alcotest.(check (list string)) "spec validates" [] (Spec.validate spec);
  (match spec.Spec.s_guard with
  | None -> Alcotest.fail "shipped ladder must carry a guardrail"
  | Some g ->
    Alcotest.(check bool) "guard fallback is a declared implementation" true
      (List.exists
         (fun c -> c.Spec.c_value = g.Spec.g_fallback)
         spec.Spec.s_configs);
    Alcotest.(check bool) "clamp covers the whole ladder" true
      (List.for_all
         (fun c ->
           c.Spec.c_value >= g.Spec.g_clamp_lo)
         spec.Spec.s_configs));
  Alcotest.(check bool) "every swap transition has hysteresis" true
    (List.for_all (fun tr -> tr.Spec.t_repeats >= 2) spec.Spec.s_transitions)

(* -- guardrail regression: a failed fallback apply must retry, not
   park the guard in cooldown behind a fresh full streak -- *)

let guard_fixture_spec =
  {
    Spec.s_name = "fixture";
    s_kind = "test";
    s_attribute = "fixture.x";
    s_metric = "m";
    s_monotone = Spec.Unordered;
    s_configs = [ { Spec.c_name = "a"; c_value = 0 }; { Spec.c_name = "b"; c_value = 1 } ];
    s_initial = 0;
    s_transitions =
      [
        {
          Spec.t_from = 0;
          t_cond = Spec.cond 5 ~hi:10;
          t_target = 1;
          t_label = "up";
          t_repeats = 1;
          t_cost = Adaptive_core.Cost.make ();
        };
      ];
    s_guard =
      Some
        {
          Spec.g_clamp_lo = 0;
          (* Clamped pathological samples fall below the "up" band, so
             cooldown samples visibly decide No_change. *)
          g_clamp_hi = 4;
          g_wedge = None;
          g_limit = 2;
          g_cooldown = 8;
          g_fallback = 0;
          g_fallback_label = "fb";
          g_fallback_cost = Adaptive_core.Cost.make ();
        };
  }

let test_guard_retries_after_failed_fallback () =
  let current = ref 1 and fallback_ok = ref false in
  let policy =
    Spec.compile
      ~read:(fun () -> !current)
      ~apply:(fun v ->
        if v = 0 && not !fallback_ok then false
        else begin
          current := v;
          true
        end)
      ~metric:(fun (m : int) -> m)
      guard_fixture_spec
  in
  let feed m =
    match policy m with
    | Adaptive_core.Policy.No_change -> None
    | Adaptive_core.Policy.Reconfigure { label; apply; _ } ->
      ignore (apply ());
      Some label
  in
  (* Two pathological samples reach the streak limit: the guard orders
     the fallback, whose apply fails (a rolled-back swap). *)
  Alcotest.(check (option string)) "first pathological sample" None (feed 50);
  Alcotest.(check (option string)) "streak fires the fallback" (Some "fb") (feed 50);
  (* Regression: before the fix the failed apply left the guard in
     cooldown with its streak spent — eight samples of silence, then a
     fresh full streak. The very next pathological sample must retry. *)
  Alcotest.(check (option string)) "failed fallback retries immediately" (Some "fb")
    (feed 50);
  fallback_ok := true;
  Alcotest.(check (option string)) "retry succeeds" (Some "fb") (feed 50);
  Alcotest.(check int) "fallback landed" 0 !current;
  (* A successful fallback does engage the cooldown. *)
  Alcotest.(check (option string)) "cooldown after success" None (feed 50)

(* -- swap-window fault kinds: plan round trip, seeded gating, injector -- *)

let test_fault_plan_swap_kinds_roundtrip () =
  let s = "kill-in-swap@50:obj=*;swap-stall@100:obj=swl,ns=500" in
  let plan = Faults.Fault_plan.of_string s in
  Alcotest.(check string) "round trip" s (Faults.Fault_plan.to_string plan);
  Alcotest.(check int) "two faults" 2 (List.length plan)

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_fault_plan_swap_gating () =
  let gen swap_faults seed =
    Faults.Fault_plan.to_string
      (Faults.Fault_plan.generate ~swap_faults ~seed ~cfg ~horizon_ns:3_000_000 ())
  in
  (* Deterministic either way... *)
  Alcotest.(check string) "deterministic with swap faults" (gen true 7) (gen true 7);
  (* ...and the swap kinds are drawn only when asked for. *)
  for seed = 0 to 49 do
    let p = gen false seed in
    if contains_sub p "swap-stall" || contains_sub p "kill-in-swap" then
      Alcotest.failf "seed %d drew a swap fault without opting in: %s" seed p
  done;
  let drew_some =
    List.exists
      (fun seed ->
        let p = gen true seed in
        contains_sub p "swap-stall" || contains_sub p "kill-in-swap")
      (List.init 50 (fun i -> i))
  in
  Alcotest.(check bool) "opting in draws swap faults" true drew_some

let test_injector_kill_in_swap () =
  let sim = Sched.create cfg in
  let plan = Faults.Fault_plan.of_string "kill-in-swap@0:obj=*" in
  let inj = Faults.Injector.install sim ~plan in
  let timed_result = ref true and recoveries = ref 0 and epoch = ref (-1) in
  Sched.run sim (fun () ->
      let lk = SL.create ~initial:SL.Tas ~home:0 () in
      let holder =
        Cthread.fork ~proc:1 (fun () ->
            SL.lock lk;
            Cthread.work 100_000;
            (* The injector kills us at the swap-begin annotation:
               the freeze is already set, the word stays held. *)
            ignore (SL.swap_to lk SL.Mcs);
            SL.unlock lk)
      in
      let late =
        Cthread.fork ~proc:2 (fun () ->
            Cthread.delay 200_000;
            timed_result := SL.lock_timeout lk ~deadline_ns:8_000_000)
      in
      Cthread.join holder;
      Cthread.join late;
      recoveries := SL.abandoned_recoveries lk;
      epoch := SL.epoch lk);
  let fired =
    List.exists
      (fun line -> contains_sub line "kill-in-swap" && contains_sub line " kill tid=")
      (Faults.Injector.applied inj)
  in
  Alcotest.(check bool) "kill-in-swap fired" true fired;
  Alcotest.(check int) "swap never committed" 0 !epoch;
  Alcotest.(check int) "abandoned freeze recovered" 1 !recoveries;
  Alcotest.(check bool) "stranded lock expires the timed waiter" false !timed_result

let suite =
  [
    Alcotest.test_case "mutex: fixed tas" `Quick (check_mutex "tas" (Some SL.Tas));
    Alcotest.test_case "mutex: fixed mcs" `Quick (check_mutex "mcs" (Some SL.Mcs));
    Alcotest.test_case "mutex: fixed blocking" `Quick
      (check_mutex "blocking" (Some SL.Blocking));
    Alcotest.test_case "mutex: adaptive" `Quick (check_mutex "adaptive" None);
    Alcotest.test_case "adapts to the queue under contention" `Quick
      test_adapts_to_queue_under_contention;
    Alcotest.test_case "adapts to blocking under long holds" `Quick
      test_adapts_to_blocking_under_long_holds;
    Alcotest.test_case "FIFO preserved across a swap" `Quick test_fifo_preserved_across_swap;
    Alcotest.test_case "killed waiter rolls the swap back" `Quick
      test_killed_waiter_rolls_swap_back;
    Alcotest.test_case "abandoned swap is recovered by waiters" `Quick
      test_abandoned_swap_recovery;
    Alcotest.test_case "stalled swapper re-validates the freeze at commit" `Quick
      test_stalled_swapper_commit_revalidates;
    Alcotest.test_case "timed expiry inside the grace window of an abandoned swap"
      `Quick test_timed_expiry_races_abandoned_recovery;
    Alcotest.test_case "pinned lock refuses implementation swaps" `Quick
      test_pinned_lock_rejects_swap;
    Alcotest.test_case "lock_timeout across contention" `Quick test_lock_timeout_semantics;
    Alcotest.test_case "identical runs are bit-identical" `Quick test_deterministic_replay;
    Alcotest.test_case "swap-free run performs zero adaptations" `Quick
      test_swap_free_run_stays_swap_free;
    Alcotest.test_case "implementation ladder spec validates" `Quick
      test_policy_spec_validates;
    Alcotest.test_case "guard retries after a failed fallback" `Quick
      test_guard_retries_after_failed_fallback;
    Alcotest.test_case "fault plan: swap kinds round-trip" `Quick
      test_fault_plan_swap_kinds_roundtrip;
    Alcotest.test_case "fault plan: swap kinds are opt-in" `Quick
      test_fault_plan_swap_gating;
    Alcotest.test_case "injector: kill-in-swap strands the freeze" `Quick
      test_injector_kill_in_swap;
  ]
