(* Priority-queue tests: ordering, FIFO stability, growth, the
   allocation-lean exn pop path, and a qcheck model-based property. *)

let check_int = Alcotest.(check int)

let test_empty () =
  let q = Engine.Pqueue.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Engine.Pqueue.is_empty q);
  Alcotest.(check (option int)) "no min key" None (Engine.Pqueue.min_key q);
  Alcotest.(check bool) "pop of empty" true (Engine.Pqueue.pop_min q = None)

let test_ordering () =
  let q = Engine.Pqueue.create ~dummy:0 () in
  List.iter (fun k -> Engine.Pqueue.add q ~key:k k) [ 5; 3; 9; 1; 7; 2 ];
  let popped = List.map fst (Engine.Pqueue.drain q) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 9 ] popped

let test_fifo_ties () =
  let q = Engine.Pqueue.create ~dummy:"" () in
  Engine.Pqueue.add q ~key:4 "a";
  Engine.Pqueue.add q ~key:4 "b";
  Engine.Pqueue.add q ~key:4 "c";
  Engine.Pqueue.add q ~key:2 "z";
  let popped = List.map snd (Engine.Pqueue.drain q) in
  Alcotest.(check (list string)) "insertion order on ties" [ "z"; "a"; "b"; "c" ] popped

let test_fifo_ties_across_pops () =
  (* FIFO stability must survive interleaved pops: equal keys added
     around a pop still come out oldest first. *)
  let q = Engine.Pqueue.create ~dummy:"" () in
  Engine.Pqueue.add q ~key:7 "first";
  Engine.Pqueue.add q ~key:7 "second";
  Engine.Pqueue.add q ~key:1 "low";
  Alcotest.(check string) "low first" "low" (Engine.Pqueue.pop_min_value_exn q);
  Engine.Pqueue.add q ~key:7 "third";
  let popped = List.map snd (Engine.Pqueue.drain q) in
  Alcotest.(check (list string)) "ties stay FIFO" [ "first"; "second"; "third" ] popped

let test_growth () =
  let q = Engine.Pqueue.create ~capacity:2 ~dummy:0 () in
  for i = 1000 downto 1 do
    Engine.Pqueue.add q ~key:i i
  done;
  check_int "size" 1000 (Engine.Pqueue.size q);
  let popped = List.map fst (Engine.Pqueue.drain q) in
  Alcotest.(check (list int)) "all sorted" (List.init 1000 (fun i -> i + 1)) popped

let test_grow_across_drain () =
  (* A queue must keep growing correctly after a drain emptied it. *)
  let q = Engine.Pqueue.create ~capacity:2 ~dummy:0 () in
  for i = 1 to 100 do
    Engine.Pqueue.add q ~key:i i
  done;
  check_int "first fill" 100 (List.length (Engine.Pqueue.drain q));
  Alcotest.(check bool) "empty after drain" true (Engine.Pqueue.is_empty q);
  for i = 500 downto 1 do
    Engine.Pqueue.add q ~key:i i
  done;
  check_int "second fill size" 500 (Engine.Pqueue.size q);
  let popped = List.map fst (Engine.Pqueue.drain q) in
  Alcotest.(check (list int)) "second fill sorted" (List.init 500 (fun i -> i + 1)) popped

let test_pop_min_exn () =
  let q = Engine.Pqueue.create ~dummy:0 () in
  Engine.Pqueue.add q ~key:9 90;
  Engine.Pqueue.add q ~key:4 40;
  (match Engine.Pqueue.pop_min_exn q with
  | 4, 40 -> ()
  | _ -> Alcotest.fail "pop_min_exn mismatch");
  check_int "value-only pop" 90 (Engine.Pqueue.pop_min_value_exn q);
  Alcotest.check_raises "pop_min_exn on empty"
    (Invalid_argument "Pqueue.pop_min_exn: empty queue") (fun () ->
      ignore (Engine.Pqueue.pop_min_exn q));
  Alcotest.check_raises "pop_min_value_exn on empty"
    (Invalid_argument "Pqueue.pop_min_value_exn: empty queue") (fun () ->
      ignore (Engine.Pqueue.pop_min_value_exn q))

let test_peek_does_not_remove () =
  let q = Engine.Pqueue.create ~dummy:"" () in
  Engine.Pqueue.add q ~key:3 "x";
  (match Engine.Pqueue.peek_min q with
  | Some (3, "x") -> ()
  | _ -> Alcotest.fail "peek mismatch");
  check_int "still there" 1 (Engine.Pqueue.size q)

let test_peek_min_key () =
  let q = Engine.Pqueue.create ~dummy:"" () in
  check_int "empty -> max_int" max_int (Engine.Pqueue.peek_min_key q);
  Engine.Pqueue.add q ~key:7 "a";
  Engine.Pqueue.add q ~key:2 "b";
  check_int "smallest key" 2 (Engine.Pqueue.peek_min_key q);
  check_int "no removal" 2 (Engine.Pqueue.size q);
  ignore (Engine.Pqueue.pop_min_exn q);
  check_int "tracks the new min" 7 (Engine.Pqueue.peek_min_key q)

let test_clear () =
  let q = Engine.Pqueue.create ~dummy:() () in
  List.iter (fun k -> Engine.Pqueue.add q ~key:k ()) [ 3; 1; 2 ];
  Engine.Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Engine.Pqueue.is_empty q);
  Engine.Pqueue.add q ~key:9 ();
  check_int "usable after clear" 1 (Engine.Pqueue.size q)

let test_interleaved_add_pop () =
  let q = Engine.Pqueue.create ~dummy:0 () in
  Engine.Pqueue.add q ~key:5 5;
  Engine.Pqueue.add q ~key:1 1;
  (match Engine.Pqueue.pop_min q with
  | Some (1, 1) -> ()
  | _ -> Alcotest.fail "expected 1");
  Engine.Pqueue.add q ~key:0 0;
  Engine.Pqueue.add q ~key:7 7;
  (match Engine.Pqueue.pop_min q with
  | Some (0, 0) -> ()
  | _ -> Alcotest.fail "expected 0");
  let rest = List.map fst (Engine.Pqueue.drain q) in
  Alcotest.(check (list int)) "remaining sorted" [ 5; 7 ] rest

(* Property: drain is a stable sort of the inserted (key, index) pairs. *)
let prop_drain_sorted =
  QCheck.Test.make ~name:"pqueue drain = stable sort" ~count:300
    QCheck.(list (int_bound 50))
    (fun keys ->
      let q = Engine.Pqueue.create ~dummy:(0, 0) () in
      List.iteri (fun i k -> Engine.Pqueue.add q ~key:k (k, i)) keys;
      let popped = List.map snd (Engine.Pqueue.drain q) in
      let expected =
        List.stable_sort
          (fun (k1, _) (k2, _) -> compare k1 k2)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      popped = expected)

let prop_size_tracks =
  QCheck.Test.make ~name:"pqueue size tracks adds and pops" ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun actions ->
      let q = Engine.Pqueue.create ~dummy:() () in
      let model = ref 0 in
      List.iter
        (fun (k, pop) ->
          if pop then begin
            if Engine.Pqueue.pop_min q <> None then decr model
          end
          else begin
            Engine.Pqueue.add q ~key:k ();
            incr model
          end)
        actions;
      Engine.Pqueue.size q = !model)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "fifo ties across pops" `Quick test_fifo_ties_across_pops;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "grow across drain" `Quick test_grow_across_drain;
    Alcotest.test_case "pop_min_exn" `Quick test_pop_min_exn;
    Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
    Alcotest.test_case "peek_min_key" `Quick test_peek_min_key;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved" `Quick test_interleaved_add_pop;
    QCheck_alcotest.to_alcotest prop_drain_sorted;
    QCheck_alcotest.to_alcotest prop_size_tracks;
  ]
