let () =
  Alcotest.run "adaptive_objects"
    [
      ("pqueue", Test_pqueue.suite);
      ("runner", Test_runner.suite);
      ("rng", Test_rng.suite);
      ("series", Test_series.suite);
      ("counters", Test_counters.suite);
      ("memory", Test_memory.suite);
      ("sched", Test_sched.suite);
      ("sched_more", Test_sched_more.suite);
      ("hooks", Test_hooks.suite);
      ("cthreads", Test_cthreads.suite);
      ("adaptive_core", Test_adaptive_core.suite);
      ("locks", Test_locks.suite);
      ("lock_units", Test_lock_units.suite);
      ("workloads", Test_workloads.suite);
      ("monitoring", Test_monitoring.suite);
      ("tsp", Test_tsp.suite);
      ("stats", Test_stats.suite);
      ("extra_locks", Test_extra_locks.suite);
      ("additions", Test_additions.suite);
      ("formal", Test_formal.suite);
      ("properties", Test_properties.suite);
      ("experiments", Test_experiments.suite);
      ("analysis", Test_analysis.suite);
      ("predict", Test_predict.suite);
      ("faults", Test_faults.suite);
      ("objects", Test_objects.suite);
      ("policy_check", Test_policy_check.suite);
      ("proto_check", Test_proto_check.suite);
      ("fastpath", Test_fastpath.suite);
      ("switch_lock", Test_switch_lock.suite);
      ("fleet", Test_fleet.suite);
    ]
