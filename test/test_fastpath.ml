(* The fast-path determinism suite: batched memory charging and op
   fusion are pure host-side accelerations, so every shipped artifact
   must be byte-identical with them enabled (the default), with fusion
   alone, and with both disabled. Each test renders one artifact under
   the three mode combinations and compares the bytes. *)

open Butterfly

let with_modes ~fast ~fusion f =
  let fast0 = Sched.fast_paths_enabled () in
  let fusion0 = Sched.op_fusion_enabled () in
  Sched.set_fast_paths fast;
  Sched.set_op_fusion fusion;
  Fun.protect
    ~finally:(fun () ->
      Sched.set_fast_paths fast0;
      Sched.set_op_fusion fusion0)
    f

(* Render [render] with both accelerations on (the default), with
   fusion alone (fused effects through the general dispatcher), and
   with neither (the fully decomposed legacy path); all three must
   produce the same bytes. *)
let ab name render =
  let accelerated = with_modes ~fast:true ~fusion:true render in
  let fused_only = with_modes ~fast:false ~fusion:true render in
  let legacy = with_modes ~fast:false ~fusion:false render in
  Alcotest.(check string) (name ^ ": accelerated = legacy") legacy accelerated;
  Alcotest.(check string) (name ^ ": fusion-only = legacy") legacy fused_only

let take n l = List.filteri (fun i _ -> i < n) l

(* {2 Soak workload} *)

let render_soak spec () =
  let r = Workloads.Soak.run spec in
  Printf.sprintf "events=%d final_ns=%d checksum=%d" r.Workloads.Soak.events
    r.Workloads.Soak.final_ns r.Workloads.Soak.checksum

let test_soak () = ab "soak" (render_soak Workloads.Soak.default)

let test_soak_uniprocessor () =
  (* No phase B: every dispatch is single-runnable, so the accelerated
     run spends its whole life on the fast path. *)
  ab "soak (uniprocessor)"
    (render_soak { Workloads.Soak.default with processors = 1; rounds = 8 })

(* {2 Shipped artifacts} *)

let test_analysis () =
  let scenarios =
    take 2 (Analysis_suite.shipped ()) @ take 1 (Analysis_suite.buggy ())
  in
  ab "ANALYSIS_results.json" (fun () ->
      Analysis_suite.to_json
        (Analysis_suite.run_all ~domains:1 ~predict:false ~confirm:false
           scenarios))

let test_chaos () =
  let scenarios = take 2 (Analysis_suite.shipped ()) in
  ab "CHAOS_results.json" (fun () ->
      Chaos.to_json (Chaos.sweep ~domains:1 ~seeds:[ 7; 11 ] ~scenarios ()))

let test_policy () =
  let module PC = Analysis.Policy_check in
  ab "POLICY_results.json" (fun () ->
      let shipped = PC.run (PC.shipped ()) in
      let fixtures =
        List.map
          (fun (name, specs, expect) -> PC.check_fixture ~name ~expect specs)
          (Analysis_suite.policy_fixtures ())
      in
      PC.to_json ~shipped ~fixtures)

let render_to_buffer print =
  let buf = Buffer.create 4096 in
  let out = Format.formatter_of_buffer buf in
  print ~out;
  Format.pp_print_flush out ();
  Buffer.contents buf

let test_objects () =
  ab "OBJECTS report" (fun () ->
      render_to_buffer (fun ~out -> Experiments.Report.print_objects ~out ~domains:1 ()))

let test_table5 () =
  ab "Table 5" (fun () ->
      render_to_buffer (fun ~out -> Experiments.Report.print_table5 ~out ~domains:1 ()))

let test_fig1_csv () =
  (* A shrunken Figure 1 grid, rendered through the shipping CSV
     writer. *)
  let base =
    {
      Workloads.Csweep.default with
      Workloads.Csweep.processors = 4;
      threads_per_proc = 2;
      iterations = 6;
    }
  in
  ab "fig1.csv" (fun () ->
      let curves =
        Experiments.Fig1.run ~domains:1 ~base ~cs_lengths:[ 5_000; 100_000 ] ()
      in
      let path = Filename.temp_file "fig1" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          Experiments.Fig1.to_csv curves oc;
          close_out oc;
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s))

(* {2 Host-side allocation bound} *)

let test_fast_path_allocation () =
  (* 1k uncontended spin lock/unlock pairs on the fast path must not
     allocate per iteration: the point of batched charging is that an
     accelerated op is a few array updates, not an effect performance
     with its continuation capture. The bound leaves room for the
     [Gc.minor_words] calls themselves and stray constants, but a
     single boxed value per iteration (>= 2000 words) would trip it. *)
  with_modes ~fast:true ~fusion:true (fun () ->
      let sim = Sched.create Config.default in
      let per_iter = ref infinity in
      Sched.run sim (fun () ->
          let lk = Cthreads.Spin.create ~node:0 () in
          Cthreads.Spin.lock lk;
          Cthreads.Spin.unlock lk;
          let iters = 1_000 in
          let before = Gc.minor_words () in
          for _ = 1 to iters do
            Cthreads.Spin.lock lk;
            Cthreads.Spin.unlock lk
          done;
          per_iter := (Gc.minor_words () -. before) /. float_of_int iters);
      if !per_iter >= 1.0 then
        Alcotest.failf "fast spin iteration allocates: %.2f minor words/iter"
          !per_iter)

let suite =
  [
    Alcotest.test_case "soak A/B" `Quick test_soak;
    Alcotest.test_case "soak A/B uniprocessor" `Quick test_soak_uniprocessor;
    Alcotest.test_case "analysis A/B" `Quick test_analysis;
    Alcotest.test_case "chaos A/B" `Quick test_chaos;
    Alcotest.test_case "policy A/B" `Quick test_policy;
    Alcotest.test_case "objects A/B" `Quick test_objects;
    Alcotest.test_case "table5 A/B" `Quick test_table5;
    Alcotest.test_case "fig1 csv A/B" `Quick test_fig1_csv;
    Alcotest.test_case "fast path allocation" `Quick test_fast_path_allocation;
  ]
