(* Predictive-analysis tests: the weak-causality predictor must find
   the prediction-only seeded bugs (which the observed-trace
   sanitizers provably miss), witness replay must promote them to
   Confirmed with byte-identical replayable schedules, and the
   predictor must stay quiet where reorderings are impossible (gate
   locks, join-ordered threads, the clean shipped catalogue). *)

open Butterfly

let cfg ?(processors = 4) ?(seed = 11) () =
  { Config.default with Config.processors; seed }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rules_of (pv : Analysis.predictive) =
  List.map (fun p -> p.Analysis.rule) pv.Analysis.predictions

let confirmed_rules (pv : Analysis.predictive) =
  List.map (fun p -> p.Analysis.rule) (Analysis.confirmed pv)

(* --- the predictor on the prediction-only seeded bugs ------------- *)

let test_hidden_race_predicted () =
  let pv = Analysis.check_predictive (cfg ()) Workloads.Buggy.hidden_race in
  check_bool "observed run is clean" true (Analysis.clean pv.Analysis.observed);
  check_bool "race predicted" true (List.mem "predicted-race" (rules_of pv))

let test_hidden_race_confirmed () =
  let pv =
    Analysis.check_predictive ~confirm:true (cfg ()) Workloads.Buggy.hidden_race
  in
  check_bool "race confirmed" true (List.mem "predicted-race" (confirmed_rules pv));
  List.iter
    (fun p ->
      match p.Analysis.witness with
      | Some w when w.Analysis.Witness.w_status = Analysis.Witness.Confirmed ->
        check_bool "confirmed witness replays byte-identically" true
          w.Analysis.Witness.w_replay_ok;
        check_bool "confirmed witness carries a schedule" true
          (w.Analysis.Witness.w_schedule <> [])
      | _ -> ())
    pv.Analysis.predictions

let test_stale_hint_race_confirmed () =
  let pv =
    Analysis.check_predictive ~confirm:true (cfg ())
      Workloads.Buggy.stale_hint_race
  in
  check_bool "observed run is clean" true (Analysis.clean pv.Analysis.observed);
  check_bool "stale-hint race confirmed" true
    (List.mem "predicted-race" (confirmed_rules pv))

let test_latent_deadlock_confirmed () =
  let pv =
    Analysis.check_predictive ~confirm:true (cfg ())
      Workloads.Buggy.latent_deadlock
  in
  (* the observed-trace graph sees the cycle as a potential... *)
  check_bool "observed cycle flagged" true
    (List.exists
       (fun d -> d.Analysis.Diag.rule = "lock-order-cycle")
       pv.Analysis.observed.Analysis.diags);
  check_bool "observed run does not deadlock" true
    (pv.Analysis.observed.Analysis.aborted = None);
  (* ...and the predictor proves it reachable *)
  check_bool "deadlock confirmed" true
    (List.mem "predicted-deadlock" (confirmed_rules pv))

let test_lost_wakeup_confirmed () =
  let pv =
    Analysis.check_predictive ~confirm:true (cfg ()) Workloads.Buggy.lost_wakeup
  in
  check_bool "observed run is clean" true (Analysis.clean pv.Analysis.observed);
  check_bool "lost wakeup confirmed" true
    (List.mem "predicted-lost-wakeup" (confirmed_rules pv))

(* --- negative controls -------------------------------------------- *)

let test_gated_order_not_predicted () =
  let pv = Analysis.check_predictive (cfg ()) Workloads.Buggy.gated_order in
  check_bool "observed graph still reports its false-positive cycle" true
    (List.exists
       (fun d -> d.Analysis.Diag.rule = "lock-order-cycle")
       pv.Analysis.observed.Analysis.diags);
  check_int "gate lock kills every prediction" 0
    (List.length pv.Analysis.predictions)

let test_join_ordered_inversion_not_predicted () =
  (* lock_order_inversion runs its two nestings in sequence, joined in
     between: the join edge is a hard edge, so no reordering can
     overlap them and the predictor must not cry deadlock. *)
  let pv =
    Analysis.check_predictive (cfg ()) Workloads.Buggy.lock_order_inversion
  in
  check_bool "join-ordered inversion not predicted" true
    (not (List.mem "predicted-deadlock" (rules_of pv)))

(* --- replay determinism ------------------------------------------- *)

let witness_schedules program =
  let pv = Analysis.check_predictive ~confirm:true (cfg ()) program in
  List.filter_map
    (fun p ->
      match p.Analysis.witness with
      | Some w when w.Analysis.Witness.w_status = Analysis.Witness.Confirmed ->
        Some w.Analysis.Witness.w_schedule
      | _ -> None)
    pv.Analysis.predictions

let test_schedules_stable_across_runs () =
  (* The whole pipeline is deterministic: two independent confirmations
     produce the same decision lists byte for byte. *)
  let a = witness_schedules Workloads.Buggy.hidden_race in
  let b = witness_schedules Workloads.Buggy.hidden_race in
  check_bool "same schedules on both runs" true (a = b);
  check_bool "at least one confirmed schedule" true (a <> [])

let test_schedule_replays_standalone () =
  (* A confirmed schedule is self-contained: feeding it to a fresh
     machine (no chooser, no holds) reproduces the exact dispatch
     sequence with no divergence and every decision consumed. *)
  match witness_schedules Workloads.Buggy.hidden_race with
  | [] -> Alcotest.fail "expected a confirmed schedule"
  | schedule :: _ ->
    let sim = Sched.create { (cfg ()) with Config.max_events = 4_000_000 } in
    Sched.set_schedule_control sim schedule;
    Sched.set_record_schedule sim true;
    (try Sched.run sim Workloads.Buggy.hidden_race with Sched.Deadlock _ -> ());
    check_bool "no divergence" false (Sched.control_diverged sim);
    check_int "all decisions consumed" 0 (Sched.schedule_control_remaining sim);
    check_bool "recorded schedule equals the input" true
      (Sched.recorded_schedule sim = schedule)

let suite =
  [
    Alcotest.test_case "hidden race predicted" `Quick test_hidden_race_predicted;
    Alcotest.test_case "hidden race confirmed" `Quick test_hidden_race_confirmed;
    Alcotest.test_case "stale hint race confirmed" `Quick
      test_stale_hint_race_confirmed;
    Alcotest.test_case "latent deadlock confirmed" `Quick
      test_latent_deadlock_confirmed;
    Alcotest.test_case "lost wakeup confirmed" `Quick test_lost_wakeup_confirmed;
    Alcotest.test_case "gated inversion not predicted" `Quick
      test_gated_order_not_predicted;
    Alcotest.test_case "join-ordered inversion not predicted" `Quick
      test_join_ordered_inversion_not_predicted;
    Alcotest.test_case "schedules stable across runs" `Quick
      test_schedules_stable_across_runs;
    Alcotest.test_case "schedule replays standalone" `Quick
      test_schedule_replays_standalone;
  ]
