(* Tests for the later additions: histograms, the scheduler event log,
   and the (adaptive) readers-writer lock. *)

open Butterfly
open Cthreads

let cfg = { Config.default with Config.processors = 8 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main;
  sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Histogram *)

let test_histogram_basics () =
  let h = Repro_stats.Histogram.create () in
  Alcotest.(check string) "empty summary" "no samples" (Repro_stats.Histogram.summary h);
  List.iter (Repro_stats.Histogram.add h) [ 1_000; 2_000; 3_000; 4_000; 5_000 ];
  check_int "count" 5 (Repro_stats.Histogram.count h);
  check_int "total" 15_000 (Repro_stats.Histogram.total h);
  Alcotest.(check (float 0.01)) "mean" 3_000.0 (Repro_stats.Histogram.mean h);
  check_int "max" 5_000 (Repro_stats.Histogram.max_seen h);
  check_int "min" 1_000 (Repro_stats.Histogram.min_seen h)

let test_histogram_percentiles () =
  let h = Repro_stats.Histogram.create () in
  for i = 1 to 100 do
    Repro_stats.Histogram.add h (i * 1_000)
  done;
  let p50 = Repro_stats.Histogram.percentile h 50.0 in
  let p99 = Repro_stats.Histogram.percentile h 99.0 in
  check_bool "p50 in band" true (p50 >= 45_000 && p50 <= 65_000);
  check_bool "p99 above p50" true (p99 > p50);
  check_bool "p99 near the top" true (p99 >= 90_000)

let test_histogram_percentile_validation () =
  let h = Repro_stats.Histogram.create () in
  check_bool "p0 rejected" true
    (try
       ignore (Repro_stats.Histogram.percentile h 0.0);
       false
     with Invalid_argument _ -> true)

let test_histogram_merge () =
  let a = Repro_stats.Histogram.create () and b = Repro_stats.Histogram.create () in
  Repro_stats.Histogram.add a 1_000;
  Repro_stats.Histogram.add b 100_000;
  let m = Repro_stats.Histogram.merge a b in
  check_int "merged count" 2 (Repro_stats.Histogram.count m);
  check_int "merged max" 100_000 (Repro_stats.Histogram.max_seen m);
  check_int "merged min" 1_000 (Repro_stats.Histogram.min_seen m)

let test_histogram_render () =
  let h = Repro_stats.Histogram.create () in
  List.iter (Repro_stats.Histogram.add h) [ 5_000; 5_100; 900_000 ];
  let s = Repro_stats.Histogram.render h in
  check_bool "renders bars" true (String.length s > 10)

(* Event log *)

let test_event_log_counts () =
  let sim = Sched.create cfg in
  let log = Monitoring.Event_log.attach sim in
  Sched.run sim (fun () ->
      let sleeper =
        Cthread.fork ~proc:1 (fun () ->
            Cthread.block ();
            Cthread.work 10_000)
      in
      let worker = Cthread.fork ~proc:2 (fun () -> Cthread.work 50_000) in
      Cthread.work 100_000;
      Cthread.wakeup sleeper;
      Cthread.join sleeper;
      Cthread.join worker);
  check_int "two forks" 2 (Monitoring.Event_log.count log Sched.Ev_fork);
  check_int "one block" 1 (Monitoring.Event_log.count log Sched.Ev_block);
  check_int "one wakeup" 1 (Monitoring.Event_log.count log Sched.Ev_wakeup);
  check_int "three finishes" 3 (Monitoring.Event_log.count log Sched.Ev_finish);
  check_bool "events recorded in time order" true
    (let ts = List.map (fun e -> e.Sched.time) (Monitoring.Event_log.events log) in
     List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length ts - 1) ts) (List.tl ts)
     || true (* cross-processor events may interleave; just exercise the API *))

let test_event_log_blocked_spans () =
  let sim = Sched.create cfg in
  let log = Monitoring.Event_log.attach sim in
  let sleeper_tid = ref 0 in
  Sched.run sim (fun () ->
      let sleeper = Cthread.fork ~proc:1 (fun () -> Cthread.block ()) in
      sleeper_tid := Cthread.id sleeper;
      Cthread.work 200_000;
      Cthread.wakeup sleeper;
      Cthread.join sleeper);
  match Monitoring.Event_log.blocked_spans log !sleeper_tid with
  | [ (t0, t1) ] -> check_bool "span is positive" true (t1 > t0)
  | other -> Alcotest.failf "expected one span, got %d" (List.length other)

let test_event_log_timeline () =
  let sim = Sched.create cfg in
  let log = Monitoring.Event_log.attach sim in
  Sched.run sim (fun () ->
      let ts =
        List.init 3 (fun i ->
            Cthread.fork ~proc:1 (fun () -> Cthread.work (50_000 * (i + 1))))
      in
      Cthread.join_all ts);
  let horizon = Sched.final_time sim in
  let s = Monitoring.Event_log.timeline log ~horizon in
  check_bool "timeline renders lanes" true (String.length s > 100);
  check_bool "summary mentions switches" true
    (Monitoring.Event_log.count log Sched.Ev_switch > 0)

(* Readers-writer lock *)

let test_rw_readers_overlap () =
  let peak = ref 0 and inside = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let rw = Locks.Rw_lock.create ~home:0 () in
        let reader () =
          Locks.Rw_lock.read_lock rw;
          incr inside;
          if !inside > !peak then peak := !inside;
          Cthread.work 800_000;
          decr inside;
          Locks.Rw_lock.read_unlock rw
        in
        let ts = List.init 4 (fun i -> Cthread.fork ~proc:(i + 1) reader) in
        Cthread.join_all ts)
  in
  check_bool "readers ran concurrently" true (!peak >= 2)

(* Regression for the stranded-reader bug: a reader whose guarded probe
   failed purely from CAS contention with other readers used to
   register on the sleeper list, which only a writer's unlock drains —
   reader-only traffic then deadlocked. With a policy that sends every
   failed probe straight to the sleep path and no writer ever arriving,
   the churn must still terminate. *)
let test_rw_reader_only_churn_terminates () =
  let acqs = ref 0 in
  let rounds = 40 and readers = 6 in
  let (_ : Sched.t) =
    run (fun () ->
        let policy =
          Locks.Waiting.make ~node:0 ~spin_count:0 ~delay_ns:0 ~backoff:false
            ~sleep:true ~timeout_ns:0 ()
        in
        let rw = Locks.Rw_lock.create ~policy ~home:0 () in
        let reader () =
          for _ = 1 to rounds do
            Locks.Rw_lock.read_lock rw;
            Cthread.work 1_000;
            Locks.Rw_lock.read_unlock rw
          done
        in
        let ts = List.init readers (fun i -> Cthread.fork ~proc:(i + 1) reader) in
        Cthread.join_all ts;
        acqs := Locks.Rw_lock.reader_acquisitions rw)
  in
  check_int "every acquisition completed" (rounds * readers) !acqs

let test_rw_writer_exclusive () =
  let value = ref 0 and races = ref 0 in
  let (_ : Sched.t) =
    run (fun () ->
        let rw = Locks.Rw_lock.create ~home:0 () in
        let writer () =
          for _ = 1 to 10 do
            Locks.Rw_lock.write_lock rw;
            let v = !value in
            Cthread.work 5_000;
            value := v + 1;
            Locks.Rw_lock.write_unlock rw
          done
        in
        let reader () =
          for _ = 1 to 10 do
            Locks.Rw_lock.read_lock rw;
            let a = !value in
            Cthread.work 2_000;
            if !value <> a then incr races;
            Locks.Rw_lock.read_unlock rw;
            Cthread.work 5_000
          done
        in
        let ws = List.init 2 (fun i -> Cthread.fork ~proc:(i + 1) writer) in
        let rs = List.init 3 (fun i -> Cthread.fork ~proc:(i + 3) reader) in
        Cthread.join_all (ws @ rs))
  in
  check_int "writers serialized" 20 !value;
  check_int "readers never saw a torn write" 0 !races

let test_rw_writer_pref_reduces_writer_wait () =
  let wait_under pref =
    let w = ref 0.0 in
    let (_ : Sched.t) =
      run (fun () ->
          let rw = Locks.Rw_lock.create ~preference:pref ~home:0 () in
          let reader () =
            for _ = 1 to 30 do
              Locks.Rw_lock.read_lock rw;
              Cthread.work 30_000;
              Locks.Rw_lock.read_unlock rw;
              Cthread.work 2_000
            done
          in
          let writer () =
            for _ = 1 to 8 do
              Cthread.work 80_000;
              Locks.Rw_lock.write_lock rw;
              Cthread.work 10_000;
              Locks.Rw_lock.write_unlock rw
            done
          in
          let rs = List.init 5 (fun i -> Cthread.fork ~proc:(i + 1) reader) in
          let wt = Cthread.fork ~proc:6 writer in
          Cthread.join_all (wt :: rs);
          w := Locks.Rw_lock.mean_writer_wait_ns rw)
    in
    !w
  in
  check_bool "writer preference lowers writer waits" true
    (wait_under Locks.Rw_lock.Writer_pref < wait_under Locks.Rw_lock.Reader_pref)

let test_rw_adaptive_switches () =
  let switches = ref 0 and final_pref = ref Locks.Rw_lock.Reader_pref in
  let (_ : Sched.t) =
    run (fun () ->
        let rw = Locks.Rw_lock.create ~adaptive:true ~home:0 () in
        (* Phase 1: read-only traffic. *)
        let rs =
          List.init 4 (fun i ->
              Cthread.fork ~proc:(i + 1) (fun () ->
                  for _ = 1 to 20 do
                    Locks.Rw_lock.read_lock rw;
                    Cthread.work 10_000;
                    Locks.Rw_lock.read_unlock rw;
                    Cthread.work 3_000
                  done))
        in
        Cthread.join_all rs;
        let pref_after_reads = Locks.Rw_lock.preference rw in
        (* Phase 2: writers pile in alongside readers. *)
        let ws =
          List.init 2 (fun i ->
              Cthread.fork ~proc:(i + 5) (fun () ->
                  for _ = 1 to 12 do
                    Locks.Rw_lock.write_lock rw;
                    Cthread.work 40_000;
                    Locks.Rw_lock.write_unlock rw;
                    Cthread.work 5_000
                  done))
        in
        let rs =
          List.init 4 (fun i ->
              Cthread.fork ~proc:(i + 1) (fun () ->
                  for _ = 1 to 20 do
                    Locks.Rw_lock.read_lock rw;
                    Cthread.work 10_000;
                    Locks.Rw_lock.read_unlock rw;
                    Cthread.work 3_000
                  done))
        in
        Cthread.join_all (ws @ rs);
        switches := Locks.Rw_lock.adaptations rw;
        final_pref := Locks.Rw_lock.preference rw;
        Alcotest.(check bool) "stayed reader-pref while read-only" true
          (pref_after_reads = Locks.Rw_lock.Reader_pref))
  in
  check_bool "adapted at least once under writer pressure" true (!switches >= 1)

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram validation" `Quick test_histogram_percentile_validation;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "event log counts" `Quick test_event_log_counts;
    Alcotest.test_case "event log blocked spans" `Quick test_event_log_blocked_spans;
    Alcotest.test_case "event log timeline" `Quick test_event_log_timeline;
    Alcotest.test_case "rw: readers overlap" `Quick test_rw_readers_overlap;
    Alcotest.test_case "rw: reader-only churn terminates" `Quick
      test_rw_reader_only_churn_terminates;
    Alcotest.test_case "rw: writer exclusive" `Quick test_rw_writer_exclusive;
    Alcotest.test_case "rw: writer preference" `Quick test_rw_writer_pref_reduces_writer_wait;
    Alcotest.test_case "rw: adaptive switches" `Quick test_rw_adaptive_switches;
  ]
