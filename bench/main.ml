(* The benchmark harness: regenerates every table and figure of the
   paper (in simulated time) at domains=1 and domains=N, compares
   wall-clock and output bytes, then runs one Bechamel micro-benchmark
   per table measuring the host-side cost of the simulation paths that
   produce it. Everything lands in <csv-dir>/BENCH_results.json.

   Each micro-benchmark also reports events/sec: the number of
   simulation events its body executes (deterministic, counted once via
   the domain event odometer) divided by the measured host time. A
   dedicated soak row runs a ~10M-event mixed workload (~1M with
   --quick) with the fast paths on and off; the ratio is the
   batching/fusion speedup. With --compare BASELINE.json the run exits
   non-zero if any benchmark's events/sec fell more than --tolerance
   (default 15%) below the baseline — the CI bench-compare gate.

   Run with: dune exec bench/main.exe -- [--csv-dir DIR] [--domains N]
                                         [--quick] [--compare PATH]
                                         [--tolerance PCT]
   The CSV directory defaults to $REPRO_RESULTS_DIR, then "results". *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Command line                                                       *)

let csv_dir =
  ref (match Sys.getenv_opt "REPRO_RESULTS_DIR" with Some d when d <> "" -> d | _ -> "results")

let domains = ref 0 (* 0 = Engine.Runner.default_domains () *)
let quick = ref false
let compare_path = ref ""
let tolerance_pct = ref 15.0
let store_path = ref "" (* "" = <csv-dir>/store.jsonl (or $REPRO_STORE) *)

let () =
  Arg.parse
    [
      ( "--csv-dir",
        Arg.Set_string csv_dir,
        "DIR  directory for figure CSVs and BENCH_results.json (default: \
         $REPRO_RESULTS_DIR or \"results\")" );
      ( "--domains",
        Arg.Set_int domains,
        "N  host cores for the parallel report generation (default: all)" );
      ( "--quick",
        Arg.Set quick,
        "  reduced Bechamel quota and a 1M-event soak, for CI smoke runs" );
      ( "--compare",
        Arg.Set_string compare_path,
        "PATH  baseline BENCH_results.json; exit 2 on an events/sec regression" );
      ( "--tolerance",
        Arg.Set_float tolerance_pct,
        "PCT  allowed events/sec drop vs the baseline (default 15)" );
      ( "--store",
        Arg.Set_string store_path,
        "FILE  results store to append this run's BENCH record to (default: \
         <csv-dir>/store.jsonl, or $REPRO_STORE)" );
    ]
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "dune exec bench/main.exe -- [options]"

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables and figures (virtual time),  *)
(* sequentially and in parallel, and compare.                         *)

let regenerate_paper () =
  print_endline "==================================================================";
  print_endline " Reproduction of every table and figure (simulated virtual time)";
  print_endline "==================================================================\n";
  let n = if !domains > 0 then !domains else Engine.Runner.default_domains () in
  let comparison, report = Experiments.Perf.compare_report_generation ~domains:n () in
  print_string report;
  (* The renderings above skipped CSV output; write the files once. *)
  Experiments.Report.print_everything
    ~out:(Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()))
    ~csv_dir:!csv_dir ~domains:n ();
  Printf.printf
    "report generation: %.2fs at domains=1, %.2fs at domains=%d (%.2fx), output %s\n\n"
    comparison.Experiments.Perf.wall_base_s comparison.Experiments.Perf.wall_parallel_s
    comparison.Experiments.Perf.domains_parallel
    (comparison.Experiments.Perf.wall_base_s
    /. Float.max comparison.Experiments.Perf.wall_parallel_s 1e-9)
    (if comparison.Experiments.Perf.identical_output then "byte-identical"
     else "DIFFERS (BUG)");
  comparison

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel host-time micro-benchmarks, one per paper table.  *)

(* Miniature configurations keep each benchmark iteration small enough
   for Bechamel's sampling. *)

let mini_machine = { Butterfly.Config.default with Butterfly.Config.processors = 4 }

let one_sim f =
  let sim = Butterfly.Sched.create mini_machine in
  Butterfly.Sched.run sim f

let bench_lock_cycle kind () =
  (* One uncontended lock/unlock pair on a fresh simulated machine:
     the unit of Tables 4 and 5. *)
  one_sim (fun () ->
      let lk = Locks.Lock.create ~home:0 kind in
      Locks.Lock.lock lk;
      Locks.Lock.unlock lk)

let bench_locking_cycle kind () =
  (* A contended handoff: the unit of Tables 6 and 7. *)
  one_sim (fun () ->
      let lk = Locks.Lock.create ~home:1 kind in
      let owner =
        Cthreads.Cthread.fork ~proc:2 (fun () ->
            Locks.Lock.lock lk;
            Cthreads.Cthread.work 200_000;
            Locks.Lock.unlock lk)
      in
      let waiter =
        Cthreads.Cthread.fork ~proc:3 (fun () ->
            Cthreads.Cthread.work 50_000;
            Locks.Lock.lock lk;
            Locks.Lock.unlock lk)
      in
      Cthreads.Cthread.join owner;
      Cthreads.Cthread.join waiter)

let bench_switch_handoff fixed () =
  (* A contended handoff through the switch lock, pinned to one
     implementation: the implementation-as-attribute fast path. *)
  one_sim (fun () ->
      let lk = Locks.Switch_lock.create ~fixed ~home:1 () in
      let owner =
        Cthreads.Cthread.fork ~proc:2 (fun () ->
            Locks.Switch_lock.lock lk;
            Cthreads.Cthread.work 200_000;
            Locks.Switch_lock.unlock lk)
      in
      let waiter =
        Cthreads.Cthread.fork ~proc:3 (fun () ->
            Cthreads.Cthread.work 50_000;
            Locks.Switch_lock.lock lk;
            Locks.Switch_lock.unlock lk)
      in
      Cthreads.Cthread.join owner;
      Cthreads.Cthread.join waiter)

let bench_switch_swap () =
  (* One full quiescence swap — freeze, kick, drain, commit — with a
     live waiter to migrate across the window. *)
  one_sim (fun () ->
      let module SL = Locks.Switch_lock in
      let lk = SL.create ~initial:SL.Tas ~home:1 () in
      let holder =
        Cthreads.Cthread.fork ~proc:2 (fun () ->
            SL.lock lk;
            let rec settle n =
              if n > 0 && SL.waiting_now lk < 1 then begin
                Cthreads.Cthread.delay 10_000;
                settle (n - 1)
              end
            in
            settle 100;
            ignore (SL.swap_to lk SL.Mcs);
            SL.unlock lk)
      in
      let waiter =
        Cthreads.Cthread.fork ~proc:3 (fun () ->
            Cthreads.Cthread.work 20_000;
            SL.lock lk;
            SL.unlock lk)
      in
      Cthreads.Cthread.join holder;
      Cthreads.Cthread.join waiter)

let bench_configuration () =
  (* The unit of Table 8: reconfiguration operations. *)
  one_sim (fun () ->
      let r = Locks.Reconfigurable_lock.create ~home:0 () in
      ignore (Locks.Reconfigurable_lock.acquire_ownership r);
      Locks.Reconfigurable_lock.release_ownership r;
      Locks.Reconfigurable_lock.configure_waiting r ~spin_count:3 ();
      Locks.Reconfigurable_lock.configure_scheduler r Locks.Lock_sched.Priority)

let bench_fig1_point () =
  (* One small critical-section-sweep cell: the unit of Figure 1. *)
  ignore
    (Workloads.Csweep.run
       {
         Workloads.Csweep.default with
         Workloads.Csweep.processors = 4;
         threads_per_proc = 2;
         iterations = 5;
         cs_ns = 20_000;
       })

let mini_tsp_spec =
  {
    Tsp.Parallel.default_spec with
    Tsp.Parallel.cities = 14;
    instance_seed = 3;
    searchers = 4;
    work_unit_ns = 20_000;
  }

let bench_tsp impl kind () =
  (* A miniature parallel TSP run: the unit of Tables 1-3 and the
     source of Figures 4-9. *)
  ignore (Tsp.Parallel.run impl { mini_tsp_spec with Tsp.Parallel.lock_kind = kind })

let bench_tsp_traced () =
  ignore
    (Tsp.Parallel.run Tsp.Parallel.Centralized
       { mini_tsp_spec with Tsp.Parallel.trace_locks = true })

(* (name, body) pairs; the body is both staged for Bechamel and run
   once standalone to count the simulation events it executes. *)
let micro_benchmarks =
  [
    ("table1: centralized TSP run (mini)", bench_tsp Tsp.Parallel.Centralized Locks.Lock.Blocking);
    ("table2: distributed TSP run (mini)", bench_tsp Tsp.Parallel.Distributed Locks.Lock.Blocking);
    ("table3: balanced TSP run (mini)", bench_tsp Tsp.Parallel.Balanced Locks.Lock.Blocking);
    ("table4: uncontended lock+unlock (spin)", bench_lock_cycle Locks.Lock.Spin);
    ("table5: uncontended lock+unlock (blocking)", bench_lock_cycle Locks.Lock.Blocking);
    ("table6: contended handoff (blocking)", bench_locking_cycle Locks.Lock.Blocking);
    ("table7: contended handoff (adaptive)", bench_locking_cycle Locks.Lock.adaptive_default);
    ("table8: configuration operations", bench_configuration);
    ("switch: contended handoff (mcs)", bench_switch_handoff Locks.Switch_lock.Mcs);
    ("switch: quiescence swap (tas->mcs)", bench_switch_swap);
    ("fig1: one sweep cell", bench_fig1_point);
    ("fig4-9: traced TSP run (mini)", bench_tsp_traced);
  ]

(* Simulation events of one run of [f]: deterministic, so counting one
   standalone execution is exact for every Bechamel iteration. *)
let events_of_run f =
  let before = Butterfly.Sched.domain_events_total () in
  f ();
  float (Butterfly.Sched.domain_events_total () - before)

let run_bechamel () =
  print_endline "==================================================================";
  print_endline " Bechamel: host-side cost of the simulation paths (ns per run)";
  print_endline "==================================================================\n";
  let quota = if !quick then Time.millisecond 50. else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  Printf.printf "%-45s %15s %8s %12s\n" "benchmark" "ns/run" "r^2" "events/s";
  List.map
    (fun (name, f) ->
      (* Warm-up runs before sampling: they populate the allocator and
         code paths so the first Bechamel samples match the rest —
         without this the blocking-lock benchmark's early samples are
         dominated by startup noise and its fit degrades badly. *)
      let events_per_run = events_of_run f in
      f ();
      f ();
      Gc.full_major ();
      let test = Test.make ~name (Staged.stage f) in
      let elt = List.hd (Test.elements test) in
      (* The host timer is noisy enough that a single sampling pass
         sometimes lands a poor fit; sample up to three times and keep
         the cleanest OLS estimate (best r^2), stopping early once the
         fit is unambiguous. *)
      let sample () =
        let result = Benchmark.run cfg instances elt in
        let est = Analyze.one ols Instance.monotonic_clock result in
        let ns =
          match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
        (ns, r2)
      in
      let rec best tries ((_, best_r2) as acc) =
        if tries = 0 || best_r2 >= 0.95 then acc
        else
          let (_, r2) as cand = sample () in
          best (tries - 1)
            (if Float.is_nan best_r2 || r2 > best_r2 then cand else acc)
      in
      let ns, r2 = best 2 (sample ()) in
      let events_per_sec =
        if Float.is_nan ns || ns <= 0.0 then 0.0 else events_per_run /. ns *. 1e9
      in
      Printf.printf "%-45s %15.0f %8.3f %12.3e\n%!" name ns r2 events_per_sec;
      { Experiments.Perf.bench_name = name; ns_per_run = ns; r_square = r2;
        events_per_run; events_per_sec })
    micro_benchmarks

(* ------------------------------------------------------------------ *)
(* Part 3: the event-mill soak — wall-clock events/sec with the fast  *)
(* paths on (the shipped configuration) and off (the per-effect       *)
(* execution model this PR replaced), on the same ~10M-event run.     *)

let soak_rows () =
  print_endline "\n==================================================================";
  print_endline " Soak: simulated events per host second (10M-event mixed mill)";
  print_endline "==================================================================\n";
  let spec = Workloads.Soak.with_rounds (if !quick then 195 else 1_950) in
  (* Stable names regardless of --quick (the CI quick run compares its
     rates against the committed full-run snapshot by name); the run's
     actual event count is recorded in events_per_run. *)
  let label suffix = Printf.sprintf "soak: event mill%s" suffix in
  let best_of n f =
    let best_s = ref infinity and result = ref None in
    for _ = 1 to n do
      let r, s = Experiments.Perf.wall_clock_s f in
      if s < !best_s then begin
        best_s := s;
        result := Some r
      end
    done;
    (Option.get !result, !best_s)
  in
  let measure name =
    let r, s = best_of 3 (fun () -> Workloads.Soak.run spec) in
    let events = float r.Workloads.Soak.events in
    let eps = events /. s in
    Printf.printf "%-45s %15.0f %8s %12.3e\n%!" name (s *. 1e9) "-" eps;
    ( r,
      { Experiments.Perf.bench_name = name; ns_per_run = s *. 1e9; r_square = nan;
        events_per_run = events; events_per_sec = eps } )
  in
  Printf.printf "%-45s %15s %8s %12s\n" "benchmark" "ns/run" "r^2" "events/s";
  let fast_res, fast_row = measure (label "") in
  Butterfly.Sched.set_fast_paths false;
  Butterfly.Sched.set_op_fusion false;
  let slow_res, slow_row =
    Fun.protect
      ~finally:(fun () ->
        Butterfly.Sched.set_fast_paths true;
        Butterfly.Sched.set_op_fusion true)
      (fun () -> measure (label " (fast paths off)"))
  in
  let identical =
    fast_res.Workloads.Soak.events = slow_res.Workloads.Soak.events
    && fast_res.Workloads.Soak.final_ns = slow_res.Workloads.Soak.final_ns
    && fast_res.Workloads.Soak.checksum = slow_res.Workloads.Soak.checksum
  in
  Printf.printf
    "\nsoak speedup: %.2fx (%d events, virtual outcome %s across modes)\n"
    (slow_row.Experiments.Perf.ns_per_run /. fast_row.Experiments.Perf.ns_per_run)
    fast_res.Workloads.Soak.events
    (if identical then "identical" else "DIFFERS (BUG)");
  ([ fast_row; slow_row ], identical)

(* ------------------------------------------------------------------ *)
(* Part 4: the bench-compare gate.                                    *)

let gate micros =
  if !compare_path = "" then true
  else
    match Experiments.Perf.load_baseline !compare_path with
    | None ->
      Printf.printf "\nbench-compare: no baseline at %s (gate skipped)\n" !compare_path;
      true
    | Some baseline ->
      let tolerance = !tolerance_pct /. 100.0 in
      let regressions =
        Experiments.Perf.compare_against_baseline ~tolerance ~baseline micros
      in
      if regressions = [] then begin
        Printf.printf "\nbench-compare: OK (no events/sec regression > %.0f%% vs %s)\n"
          !tolerance_pct !compare_path;
        true
      end
      else begin
        Printf.printf "\nbench-compare: FAIL — events/sec regressions > %.0f%% vs %s:\n"
          !tolerance_pct !compare_path;
        List.iter
          (fun r ->
            Printf.printf "  %-45s %.3e -> %.3e (%.0f%%)\n"
              r.Experiments.Perf.name r.Experiments.Perf.baseline_eps
              r.Experiments.Perf.current_eps
              (100.0
              *. (r.Experiments.Perf.current_eps /. r.Experiments.Perf.baseline_eps
                 -. 1.0)))
          regressions;
        false
      end

let () =
  (* A roomy minor heap keeps collections out of the middle of
     Bechamel samples; with the default 256k-word nursery the
     microsecond-scale lock benchmarks absorb a collection every few
     samples and their OLS fit (r^2) collapses. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 24 };
  let comparison = regenerate_paper () in
  let micros = run_bechamel () in
  let soak, soak_identical = soak_rows () in
  let micros = micros @ soak in
  if not (Sys.file_exists !csv_dir) then Sys.mkdir !csv_dir 0o755;
  let json_path = Filename.concat !csv_dir "BENCH_results.json" in
  Experiments.Perf.write_json ~path:json_path ~micros ~comparison:(Some comparison) ();
  Printf.printf "\nbench: done (figure CSVs and BENCH_results.json written to %s/)\n"
    !csv_dir;
  (* One store record for the whole run: the report-level events/sec
     (what `repro bench --compare` gates on) plus one eps/ metric per
     micro-benchmark, with the full BENCH json as the payload. *)
  let store =
    if !store_path <> "" then !store_path
    else Fleet.Emit.default_store ~csv_dir:!csv_dir
  in
  let metrics =
    ( "events_per_sec",
      comparison.Experiments.Perf.events_base
      /. Float.max comparison.Experiments.Perf.wall_base_s 1e-9 )
    :: ( "identical_output",
         if comparison.Experiments.Perf.identical_output then 1. else 0. )
    :: List.filter_map
         (fun m ->
           if Float.is_nan m.Experiments.Perf.events_per_sec then None
           else
             Some ("eps/" ^ m.Experiments.Perf.bench_name, m.Experiments.Perf.events_per_sec))
         micros
  in
  let record =
    Fleet.Store.make ~driver:"bench" ~kind:"BENCH"
      ~config:(if !quick then [ ("quick", "true") ] else [])
      ~metrics
      ~payload:(Experiments.Perf.to_json ~micros ~comparison:(Some comparison) ())
      ()
  in
  Fleet.Store.append ~path:store [ record ];
  Printf.printf "bench: appended BENCH record to %s\n" store;
  let gate_ok = gate micros in
  if not comparison.Experiments.Perf.identical_output then exit 1;
  if not soak_identical then exit 1;
  if not gate_ok then exit 2
