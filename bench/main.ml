(* The benchmark harness: regenerates every table and figure of the
   paper (in simulated time) at domains=1 and domains=N, compares
   wall-clock and output bytes, then runs one Bechamel micro-benchmark
   per table measuring the host-side cost of the simulation paths that
   produce it. Everything lands in <csv-dir>/BENCH_results.json.

   Run with: dune exec bench/main.exe -- [--csv-dir DIR] [--domains N]
                                         [--quick]
   The CSV directory defaults to $REPRO_RESULTS_DIR, then "results". *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Command line                                                       *)

let csv_dir =
  ref (match Sys.getenv_opt "REPRO_RESULTS_DIR" with Some d when d <> "" -> d | _ -> "results")

let domains = ref 0 (* 0 = Engine.Runner.default_domains () *)
let quick = ref false

let () =
  Arg.parse
    [
      ( "--csv-dir",
        Arg.Set_string csv_dir,
        "DIR  directory for figure CSVs and BENCH_results.json (default: \
         $REPRO_RESULTS_DIR or \"results\")" );
      ( "--domains",
        Arg.Set_int domains,
        "N  host cores for the parallel report generation (default: all)" );
      ( "--quick",
        Arg.Set quick,
        "  reduced Bechamel quota, for CI smoke runs" );
    ]
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "dune exec bench/main.exe -- [options]"

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables and figures (virtual time),  *)
(* sequentially and in parallel, and compare.                         *)

let regenerate_paper () =
  print_endline "==================================================================";
  print_endline " Reproduction of every table and figure (simulated virtual time)";
  print_endline "==================================================================\n";
  let n = if !domains > 0 then !domains else Engine.Runner.default_domains () in
  let comparison, report = Experiments.Perf.compare_report_generation ~domains:n () in
  print_string report;
  (* The renderings above skipped CSV output; write the files once. *)
  Experiments.Report.print_everything
    ~out:(Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()))
    ~csv_dir:!csv_dir ~domains:n ();
  Printf.printf
    "report generation: %.2fs at domains=1, %.2fs at domains=%d (%.2fx), output %s\n\n"
    comparison.Experiments.Perf.wall_base_s comparison.Experiments.Perf.wall_parallel_s
    comparison.Experiments.Perf.domains_parallel
    (comparison.Experiments.Perf.wall_base_s
    /. Float.max comparison.Experiments.Perf.wall_parallel_s 1e-9)
    (if comparison.Experiments.Perf.identical_output then "byte-identical"
     else "DIFFERS (BUG)");
  comparison

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel host-time micro-benchmarks, one per paper table.  *)

(* Miniature configurations keep each benchmark iteration small enough
   for Bechamel's sampling. *)

let mini_machine = { Butterfly.Config.default with Butterfly.Config.processors = 4 }

let one_sim f =
  let sim = Butterfly.Sched.create mini_machine in
  Butterfly.Sched.run sim f

let bench_lock_cycle kind () =
  (* One uncontended lock/unlock pair on a fresh simulated machine:
     the unit of Tables 4 and 5. *)
  one_sim (fun () ->
      let lk = Locks.Lock.create ~home:0 kind in
      Locks.Lock.lock lk;
      Locks.Lock.unlock lk)

let bench_locking_cycle kind () =
  (* A contended handoff: the unit of Tables 6 and 7. *)
  one_sim (fun () ->
      let lk = Locks.Lock.create ~home:1 kind in
      let owner =
        Cthreads.Cthread.fork ~proc:2 (fun () ->
            Locks.Lock.lock lk;
            Cthreads.Cthread.work 200_000;
            Locks.Lock.unlock lk)
      in
      let waiter =
        Cthreads.Cthread.fork ~proc:3 (fun () ->
            Cthreads.Cthread.work 50_000;
            Locks.Lock.lock lk;
            Locks.Lock.unlock lk)
      in
      Cthreads.Cthread.join owner;
      Cthreads.Cthread.join waiter)

let bench_configuration () =
  (* The unit of Table 8: reconfiguration operations. *)
  one_sim (fun () ->
      let r = Locks.Reconfigurable_lock.create ~home:0 () in
      ignore (Locks.Reconfigurable_lock.acquire_ownership r);
      Locks.Reconfigurable_lock.release_ownership r;
      Locks.Reconfigurable_lock.configure_waiting r ~spin_count:3 ();
      Locks.Reconfigurable_lock.configure_scheduler r Locks.Lock_sched.Priority)

let bench_fig1_point () =
  (* One small critical-section-sweep cell: the unit of Figure 1. *)
  ignore
    (Workloads.Csweep.run
       {
         Workloads.Csweep.default with
         Workloads.Csweep.processors = 4;
         threads_per_proc = 2;
         iterations = 5;
         cs_ns = 20_000;
       })

let mini_tsp_spec =
  {
    Tsp.Parallel.default_spec with
    Tsp.Parallel.cities = 14;
    instance_seed = 3;
    searchers = 4;
    work_unit_ns = 20_000;
  }

let bench_tsp impl kind () =
  (* A miniature parallel TSP run: the unit of Tables 1-3 and the
     source of Figures 4-9. *)
  ignore (Tsp.Parallel.run impl { mini_tsp_spec with Tsp.Parallel.lock_kind = kind })

let bench_tsp_traced () =
  ignore
    (Tsp.Parallel.run Tsp.Parallel.Centralized
       { mini_tsp_spec with Tsp.Parallel.trace_locks = true })

let tests =
  [
    Test.make ~name:"table1: centralized TSP run (mini)"
      (Staged.stage (bench_tsp Tsp.Parallel.Centralized Locks.Lock.Blocking));
    Test.make ~name:"table2: distributed TSP run (mini)"
      (Staged.stage (bench_tsp Tsp.Parallel.Distributed Locks.Lock.Blocking));
    Test.make ~name:"table3: balanced TSP run (mini)"
      (Staged.stage (bench_tsp Tsp.Parallel.Balanced Locks.Lock.Blocking));
    Test.make ~name:"table4: uncontended lock+unlock (spin)"
      (Staged.stage (bench_lock_cycle Locks.Lock.Spin));
    Test.make ~name:"table5: uncontended lock+unlock (blocking)"
      (Staged.stage (bench_lock_cycle Locks.Lock.Blocking));
    Test.make ~name:"table6: contended handoff (blocking)"
      (Staged.stage (bench_locking_cycle Locks.Lock.Blocking));
    Test.make ~name:"table7: contended handoff (adaptive)"
      (Staged.stage (bench_locking_cycle Locks.Lock.adaptive_default));
    Test.make ~name:"table8: configuration operations"
      (Staged.stage bench_configuration);
    Test.make ~name:"fig1: one sweep cell" (Staged.stage bench_fig1_point);
    Test.make ~name:"fig4-9: traced TSP run (mini)" (Staged.stage bench_tsp_traced);
  ]

let run_bechamel () =
  print_endline "==================================================================";
  print_endline " Bechamel: host-side cost of the simulation paths (ns per run)";
  print_endline "==================================================================\n";
  let quota = if !quick then Time.millisecond 50. else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  Printf.printf "%-45s %15s %8s\n" "benchmark" "ns/run" "r^2";
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock result in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
          Printf.printf "%-45s %15.0f %8.3f\n%!" (Test.Elt.name elt) ns r2;
          {
            Experiments.Perf.bench_name = Test.Elt.name elt;
            ns_per_run = ns;
            r_square = r2;
          })
        (Test.elements test))
    tests

let () =
  let comparison = regenerate_paper () in
  let micros = run_bechamel () in
  if not (Sys.file_exists !csv_dir) then Sys.mkdir !csv_dir 0o755;
  let json_path = Filename.concat !csv_dir "BENCH_results.json" in
  Experiments.Perf.write_json ~path:json_path ~micros ~comparison:(Some comparison) ();
  Printf.printf "\nbench: done (figure CSVs and BENCH_results.json written to %s/)\n"
    !csv_dir;
  if not comparison.Experiments.Perf.identical_output then exit 1
